/**
 * @file
 * Load generators with the paper's measurement methodology (§V).
 *
 * Two modes, used exactly as the paper uses them:
 *
 *  - Closed loop: a fixed number of synchronous workers issue
 *    back-to-back requests; used only to establish peak sustainable
 *    (saturation) throughput, where latency is meaningless.
 *
 *  - Open loop: request send times are drawn a priori from a Poisson
 *    process at the offered load and laid out on the monotonic clock;
 *    latency for request i is measured from its *scheduled* send time,
 *    so a stalled service inflates the latency of every queued request
 *    instead of silently pausing the generator. This is the defence
 *    against the coordinated-omission problem the paper calls out in
 *    CloudSuite/YCSB-style closed-loop testers.
 */

#ifndef MUSUITE_LOADGEN_LOADGEN_H
#define MUSUITE_LOADGEN_LOADGEN_H

#include <cstdint>
#include <functional>
#include <string>

#include "base/rng.h"
#include "base/status.h"
#include "stats/histogram.h"

namespace musuite {

/**
 * Per-request result reported back to a load generator. Implicitly
 * constructible from bool so existing `done(true)` call sites keep
 * working; set `degraded` when the service answered with a partial
 * (quorum-merged) response.
 */
struct RequestOutcome
{
    RequestOutcome(bool ok_in = true) : ok(ok_in) {}
    RequestOutcome(bool ok_in, bool degraded_in)
        : ok(ok_in), degraded(degraded_in)
    {
    }

    /** A request the server explicitly refused (RESOURCE_EXHAUSTED)
     *  rather than failed: overload shedding, not breakage. */
    static RequestOutcome
    shedRequest()
    {
        RequestOutcome outcome(false);
        outcome.shed = true;
        return outcome;
    }

    bool ok = true;
    bool degraded = false;
    bool shed = false;
};

/** Outcome of one load-generation run. */
struct LoadResult
{
    Histogram latency;        //!< End-to-end ns per completed request.
    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t errors = 0;      //!< All failures, sheds included.
    uint64_t shed = 0;        //!< Failures that were explicit sheds.
    uint64_t degraded = 0;    //!< Completed, but partial results.
    double offeredQps = 0.0;  //!< Open loop only.
    double achievedQps = 0.0; //!< completed / elapsed.
    int64_t elapsedNs = 0;
    /**
     * Time from a fault clearing until goodput sustainably returned
     * to its pre-fault baseline, when the run measured one (see
     * stats/recovery.h); -1 = not measured or never recovered.
     * Filled by fault-recovery experiments (bench/chaos_storm), not
     * by the generators themselves.
     */
    int64_t recoveryTimeNs = -1;

    /** Drop rate sanity check for experiments. */
    double
    errorRate() const
    {
        return issued ? double(errors) / double(issued) : 0.0;
    }

    /** Fraction of completions that carried partial results. */
    double
    degradedRate() const
    {
        return completed ? double(degraded) / double(completed) : 0.0;
    }

    /**
     * Completions that landed within `deadline_ns` — goodput, the
     * metric the overload experiments report instead of raw
     * throughput (0 = no deadline: every completion counts).
     */
    uint64_t
    goodputCount(int64_t deadline_ns) const
    {
        return deadline_ns > 0 ? latency.countAtOrBelow(deadline_ns)
                               : completed;
    }

    /** Shed/accept/goodput view of this run against a deadline. */
    ShedAcceptBreakdown
    breakdown(int64_t deadline_ns) const
    {
        ShedAcceptBreakdown out;
        out.offered = issued;
        out.completed = completed;
        out.shed = shed;
        out.failed = errors >= shed ? errors - shed : 0;
        out.goodput = goodputCount(deadline_ns);
        return out;
    }
};

class OpenLoopLoadGen
{
  public:
    /**
     * Issue one asynchronous request. Must not block; call done()
     * exactly once (from any thread) with the request's outcome
     * (a bare bool still converts — degraded defaults to false).
     */
    using AsyncIssue = std::function<void(
        uint64_t seq, std::function<void(RequestOutcome)> done)>;

    struct Options
    {
        double qps = 1000.0;        //!< Offered load.
        int64_t durationNs = 1'000'000'000;
        uint64_t maxRequests = UINT64_MAX;
        uint64_t seed = 1;
        int64_t drainTimeoutNs = 5'000'000'000; //!< Wait for stragglers.
    };

    explicit OpenLoopLoadGen(Options options) : options(options) {}

    /** Run to completion on the calling thread. */
    LoadResult run(const AsyncIssue &issue);

  private:
    Options options;
};

class ClosedLoopLoadGen
{
  public:
    /** Issue one synchronous request; return success. */
    using SyncIssue = std::function<bool(uint64_t seq)>;

    struct Options
    {
        int workers = 8;
        int64_t durationNs = 1'000'000'000;
    };

    explicit ClosedLoopLoadGen(Options options) : options(options) {}

    LoadResult run(const SyncIssue &issue);

  private:
    Options options;
};

/**
 * Establish peak sustainable throughput by sweeping closed-loop worker
 * counts until the achieved QPS plateaus (< plateau_fraction gain), as
 * the paper does for Fig. 9.
 *
 * @param issue Synchronous request issuer shared by all workers.
 * @param per_step_ns Measurement window per worker count.
 * @return Peak achieved QPS observed.
 */
double findSaturationThroughput(const ClosedLoopLoadGen::SyncIssue &issue,
                                int max_workers = 64,
                                int64_t per_step_ns = 500'000'000,
                                double plateau_fraction = 0.05);

} // namespace musuite

#endif // MUSUITE_LOADGEN_LOADGEN_H

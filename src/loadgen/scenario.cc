/**
 * @file
 * Implementation of the load-shape scenario library.
 */

#include "loadgen/scenario.h"

#include <cmath>

#include "base/logging.h"
#include "base/rng.h"

namespace musuite {
namespace loadgen {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
} // namespace

LoadShape
LoadShape::constant(double qps)
{
    LoadShape shape;
    shape.kind = Kind::Constant;
    shape.baseQps = qps;
    shape.peakQps = qps;
    return shape;
}

LoadShape
LoadShape::diurnal(double base_qps, double peak_qps,
                   int64_t period_ns)
{
    LoadShape shape;
    shape.kind = Kind::Diurnal;
    shape.baseQps = base_qps;
    shape.peakQps = peak_qps;
    shape.periodNs = period_ns;
    return shape;
}

LoadShape
LoadShape::flashCrowd(double base_qps, double spike_qps,
                      int64_t start_ns, int64_t duration_ns)
{
    LoadShape shape;
    shape.kind = Kind::FlashCrowd;
    shape.baseQps = base_qps;
    shape.peakQps = spike_qps;
    shape.burstStartNs = start_ns;
    shape.burstDurationNs = duration_ns;
    return shape;
}

double
LoadShape::qpsAt(int64_t t_ns) const
{
    switch (kind) {
    case Kind::Constant:
        return baseQps;
    case Kind::Diurnal: {
        if (periodNs <= 0)
            return baseQps;
        const double phase =
            kTwoPi * double(t_ns % periodNs) / double(periodNs);
        // Trough at t=0, crest half a period in.
        return baseQps +
               (peakQps - baseQps) * 0.5 * (1.0 - std::cos(phase));
    }
    case Kind::FlashCrowd:
        return (t_ns >= burstStartNs &&
                t_ns < burstStartNs + burstDurationNs)
                   ? peakQps
                   : baseQps;
    }
    return baseQps;
}

double
LoadShape::maxQps() const
{
    return peakQps > baseQps ? peakQps : baseQps;
}

std::vector<int64_t>
arrivalSchedule(const LoadShape &shape, int64_t duration_ns,
                uint64_t seed)
{
    MUSUITE_CHECK(duration_ns > 0) << "empty schedule horizon";
    const double peak = shape.maxQps();
    std::vector<int64_t> arrivals;
    if (peak <= 0.0)
        return arrivals;
    arrivals.reserve(size_t(peak * double(duration_ns) * 1e-9) + 16);

    // Lewis-Shedler thinning: draw a homogeneous Poisson process at
    // the envelope rate, keep each point with probability
    // qpsAt(t)/peak. Both draws come from one seeded stream, so the
    // schedule is a pure function of (shape, duration, seed).
    Rng rng(seed);
    const double rate_per_ns = peak * 1e-9;
    double t = 0.0;
    while (true) {
        t += rng.nextExponential(rate_per_ns);
        if (t >= double(duration_ns))
            break;
        const double keep = shape.qpsAt(int64_t(t)) / peak;
        if (keep >= 1.0 || rng.nextBool(keep))
            arrivals.push_back(int64_t(t));
    }
    return arrivals;
}

} // namespace loadgen
} // namespace musuite

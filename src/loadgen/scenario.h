/**
 * @file
 * Load-shape scenario library: time-varying offered load as data.
 *
 * A LoadShape maps an instant to an offered QPS — constant, diurnal
 * cycle, or flash crowd — and arrivalSchedule() turns a shape into a
 * concrete, deterministic Poisson arrival schedule (thinning over the
 * shape's peak rate), expressed as offsets from t=0. The schedule is
 * clock-agnostic: the real-time load generator can sleep to each
 * offset, and the sim benches (`bench/dag_storm`) arm one SimClock
 * timer per arrival, so the identical workload drives both modes.
 * Coordinated-omission-safe by construction: arrival instants are
 * fixed up front and never shifted by response latency.
 */

#ifndef MUSUITE_LOADGEN_SCENARIO_H
#define MUSUITE_LOADGEN_SCENARIO_H

#include <cstdint>
#include <vector>

namespace musuite {
namespace loadgen {

struct LoadShape
{
    enum class Kind {
        Constant,   //!< baseQps throughout.
        Diurnal,    //!< Sinusoid between baseQps and peakQps.
        FlashCrowd, //!< baseQps with a peakQps burst window.
    };

    Kind kind = Kind::Constant;
    double baseQps = 1000.0;
    double peakQps = 1000.0;
    int64_t periodNs = 1'000'000'000;  //!< Diurnal cycle length.
    int64_t burstStartNs = 0;          //!< Flash-crowd window start...
    int64_t burstDurationNs = 0;       //!< ...and length.

    static LoadShape constant(double qps);
    static LoadShape diurnal(double base_qps, double peak_qps,
                             int64_t period_ns);
    static LoadShape flashCrowd(double base_qps, double spike_qps,
                                int64_t start_ns, int64_t duration_ns);

    /** Offered rate at `t_ns` since the run started. */
    double qpsAt(int64_t t_ns) const;
    /** Upper bound of qpsAt over any horizon (thinning envelope). */
    double maxQps() const;
};

/**
 * Deterministic Poisson arrivals following `shape` over [0,
 * duration_ns), as non-decreasing offsets from the run start.
 * Identical (shape, duration, seed) yields the identical schedule.
 */
std::vector<int64_t> arrivalSchedule(const LoadShape &shape,
                                     int64_t duration_ns,
                                     uint64_t seed);

} // namespace loadgen
} // namespace musuite

#endif // MUSUITE_LOADGEN_SCENARIO_H

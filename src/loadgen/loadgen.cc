/**
 * @file
 * Implementation of the open- and closed-loop load generators.
 */

#include "loadgen/loadgen.h"

#include <atomic>
#include <memory>
#include <vector>

#include "base/threading.h"
#include "base/time_util.h"

namespace musuite {

namespace {

/** Completion-side state shared with in-flight callbacks. */
struct OpenLoopState
{
    Mutex mutex{LockRank::loadgen, "loadgen"};
    Histogram latency GUARDED_BY(mutex);
    uint64_t completed GUARDED_BY(mutex) = 0;
    uint64_t errors GUARDED_BY(mutex) = 0;
    uint64_t shed GUARDED_BY(mutex) = 0;
    uint64_t degraded GUARDED_BY(mutex) = 0;
    std::atomic<uint64_t> outstanding{0};
};

} // namespace

LoadResult
OpenLoopLoadGen::run(const AsyncIssue &issue)
{
    auto state = std::make_shared<OpenLoopState>();
    Rng rng(options.seed);

    const int64_t start = nowNanos();
    const int64_t deadline = start + options.durationNs;
    // Inter-arrival gaps are exponential: a Poisson arrival process.
    const double rate_per_ns = options.qps / 1e9;

    uint64_t issued = 0;
    int64_t scheduled = start;
    while (issued < options.maxRequests) {
        scheduled += int64_t(rng.nextExponential(rate_per_ns));
        if (scheduled >= deadline)
            break;
        sleepUntilNanos(scheduled);

        const uint64_t seq = issued++;
        state->outstanding.fetch_add(1, std::memory_order_relaxed);
        // Latency is measured from the *scheduled* send time: if the
        // generator itself fell behind (service pushed back), the
        // wait counts against the service, not the generator.
        const int64_t scheduled_ns = scheduled;
        issue(seq, [state, scheduled_ns](RequestOutcome outcome) {
            const int64_t now = nowNanos();
            {
                MutexLock guard(state->mutex);
                if (outcome.ok) {
                    state->latency.record(now - scheduled_ns);
                    state->completed++;
                    if (outcome.degraded)
                        state->degraded++;
                } else {
                    state->errors++;
                    if (outcome.shed)
                        state->shed++;
                }
            }
            state->outstanding.fetch_sub(1, std::memory_order_release);
        });
    }

    // Drain stragglers.
    const int64_t drain_deadline = nowNanos() + options.drainTimeoutNs;
    while (state->outstanding.load(std::memory_order_acquire) > 0 &&
           nowNanos() < drain_deadline) {
        sleepForNanos(100'000);
    }

    LoadResult result;
    {
        MutexLock guard(state->mutex);
        result.latency = state->latency;
        result.completed = state->completed;
        result.errors = state->errors;
        result.shed = state->shed;
        result.degraded = state->degraded;
    }
    result.issued = issued;
    result.offeredQps = options.qps;
    result.elapsedNs = nowNanos() - start;
    result.achievedQps =
        result.elapsedNs > 0
            ? double(result.completed) * 1e9 / double(result.elapsedNs)
            : 0.0;
    return result;
}

LoadResult
ClosedLoopLoadGen::run(const SyncIssue &issue)
{
    struct WorkerState
    {
        Histogram latency;
        uint64_t completed = 0;
        uint64_t errors = 0;
        uint64_t issued = 0;
    };
    std::vector<WorkerState> states(size_t(options.workers));
    std::atomic<uint64_t> next_seq{0};
    const int64_t start = nowNanos();
    const int64_t deadline = start + options.durationNs;

    {
        std::vector<ScopedThread> workers;
        for (int w = 0; w < options.workers; ++w) {
            workers.emplace_back(
                "loadgen-" + std::to_string(w), [&, w] {
                    setCurrentThreadRole(ThreadRole::loadgen);
                    WorkerState &mine = states[size_t(w)];
                    while (nowNanos() < deadline) {
                        const uint64_t seq = next_seq.fetch_add(1);
                        const int64_t t0 = nowNanos();
                        const bool ok = issue(seq);
                        mine.issued++;
                        if (ok) {
                            mine.latency.record(nowNanos() - t0);
                            mine.completed++;
                        } else {
                            mine.errors++;
                        }
                    }
                });
        }
    } // Joins all workers.

    LoadResult result;
    for (const WorkerState &state : states) {
        result.latency.merge(state.latency);
        result.completed += state.completed;
        result.errors += state.errors;
        result.issued += state.issued;
    }
    result.elapsedNs = nowNanos() - start;
    result.achievedQps =
        result.elapsedNs > 0
            ? double(result.completed) * 1e9 / double(result.elapsedNs)
            : 0.0;
    return result;
}

double
findSaturationThroughput(const ClosedLoopLoadGen::SyncIssue &issue,
                         int max_workers, int64_t per_step_ns,
                         double plateau_fraction)
{
    double best = 0.0;
    for (int workers = 1; workers <= max_workers; workers *= 2) {
        ClosedLoopLoadGen::Options options;
        options.workers = workers;
        options.durationNs = per_step_ns;
        ClosedLoopLoadGen generator(options);
        const LoadResult result = generator.run(issue);
        if (result.achievedQps <= best * (1.0 + plateau_fraction) &&
            best > 0.0) {
            return best;
        }
        best = std::max(best, result.achievedQps);
    }
    return best;
}

} // namespace musuite

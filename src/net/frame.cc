/**
 * @file
 * Implementation of length-prefixed framing.
 */

#include "net/frame.h"

#include <algorithm>
#include <cstring>
#include <sys/uio.h>

#include "base/logging.h"
#include "serde/wire.h"

namespace musuite {

namespace {

/** Frames rejected on the send side for exceeding maxFrameBytes. */
std::atomic<uint64_t> oversizedSends{0};

} // namespace

uint64_t
FramedConnection::oversizedSendCount()
{
    return oversizedSends.load(std::memory_order_relaxed);
}

FramedConnection::FramedConnection(TcpSocket socket, Poller *poller,
                                   void *cookie)
    : sock(std::move(socket)), poller(poller), cookie(cookie)
{}

FramedConnection::~FramedConnection()
{
    shutdown();
    // No concurrent users remain at destruction; recycle what never
    // reached the kernel.
    MutexLock lock(outMutex);
    while (!outQueue.empty()) {
        releaseWireBuffer(std::move(outQueue.front().payload));
        outQueue.pop_front();
    }
}

void
FramedConnection::registerWithPoller()
{
    if (poller && sock.valid())
        poller->add(sock.fd(), cookie, false);
}

bool
FramedConnection::onReadable(
    const std::function<void(std::string_view)> &sink)
{
    assertOnFrameReaderThread();
    if (isDead())
        return false;

    constexpr size_t readChunk = 64 * 1024;
    while (true) {
        // Ensure readChunk bytes of tail space: slide unparsed bytes
        // to the front (cursor compaction, no erase-shuffle per event)
        // and grow geometrically only when a frame outsizes the
        // buffer. Capacity is kept across events, so steady-state
        // reads allocate nothing.
        if (inbound.size() - inEnd < readChunk) {
            if (inCursor > 0) {
                std::memmove(&inbound[0], inbound.data() + inCursor,
                             inEnd - inCursor);
                inEnd -= inCursor;
                inCursor = 0;
            }
            if (inbound.size() - inEnd < readChunk)
                inbound.resize(
                    std::max(inEnd + readChunk, 2 * inbound.size()));
        }
        const size_t want = inbound.size() - inEnd;
        size_t received = 0;
        const IoStatus status =
            sock.receive(&inbound[inEnd], want, received);
        if (status == IoStatus::Ok) {
            inEnd += received;
            // A short read means the kernel buffer is drained: go
            // parse instead of paying a guaranteed-EAGAIN recv. Only
            // a full read hints at more pending bytes.
            if (received < want)
                break;
            continue;
        }
        if (status == IoStatus::WouldBlock)
            break;
        shutdown();
        return false;
    }

    // Parse complete frames in [inCursor, inEnd).
    while (inEnd - inCursor >= 4) {
        uint32_t length;
        std::memcpy(&length, inbound.data() + inCursor, 4);
        if (length > maxFrameBytes) {
            MUSUITE_WARN() << "oversized frame (" << length
                           << " bytes); dropping connection";
            shutdown();
            return false;
        }
        if (inEnd - inCursor - 4 < length)
            break;
        sink(std::string_view(inbound.data() + inCursor + 4, length));
        inCursor += 4 + size_t(length);
    }
    if (inCursor == inEnd)
        inCursor = inEnd = 0; // All consumed: rewind, keep capacity.
    return !isDead();
}

void
FramedConnection::onWritable()
{
    assertOnFrameReaderThread();
    bool ok;
    {
        MutexLock lock(outMutex);
        ok = flushLocked(lock);
    }
    if (!ok)
        shutdown();
}

bool
FramedConnection::sendFrame(std::string_view payload)
{
    if (isDead())
        return false;
    if (payload.size() > maxFrameBytes) {
        oversizedSends.fetch_add(1, std::memory_order_relaxed);
        MUSUITE_WARN() << "oversized outbound frame (" << payload.size()
                       << " bytes) rejected";
        return false;
    }
    std::string owned = acquireWireBuffer(payload.size());
    if (!payload.empty())
        owned.assign(payload.data(), payload.size());
    return sendFrameOwned(std::move(owned));
}

bool
FramedConnection::sendFrameOwned(std::string payload)
{
    if (isDead())
        return false;
    if (payload.size() > maxFrameBytes) {
        oversizedSends.fetch_add(1, std::memory_order_relaxed);
        MUSUITE_WARN() << "oversized outbound frame (" << payload.size()
                       << " bytes) rejected";
        return false;
    }

    bool ok;
    {
        MutexLock lock(outMutex);
        queueLocked(std::move(payload));
        ok = flushLocked(lock);
    }
    if (!ok)
        shutdown();
    return !isDead();
}

void
FramedConnection::cork()
{
    MutexLock lock(outMutex);
    ++corkDepth;
}

bool
FramedConnection::uncork()
{
    bool ok;
    {
        MutexLock lock(outMutex);
        MUSUITE_CHECK(corkDepth > 0) << "uncork without matching cork";
        --corkDepth;
        ok = corkDepth == 0 ? flushLocked(lock) : true;
    }
    if (!ok)
        shutdown();
    return !isDead();
}

void
FramedConnection::queueLocked(std::string &&payload)
{
    OutFrame frame;
    const uint32_t length = uint32_t(payload.size());
    std::memcpy(frame.header, &length, sizeof(frame.header));
    frame.payload = std::move(payload);
    outQueue.push_back(std::move(frame));
}

bool
FramedConnection::flushLocked(MutexLock &lock)
{
    if (flushing || corkDepth > 0)
        return true; // The active flusher / uncork will drain us.
    flushing = true;

    bool ok = true;
    while (!outQueue.empty() && corkDepth == 0) {
        // Build the scatter list: {header, payload} per frame, the
        // front frame offset by outCursor.
        struct iovec iov[2 * maxFramesPerFlush];
        int iovcnt = 0;
        size_t skip = outCursor;
        for (OutFrame &frame : outQueue) {
            if (iovcnt + 2 > int(2 * maxFramesPerFlush))
                break;
            if (skip < sizeof(frame.header)) {
                iov[iovcnt].iov_base = frame.header + skip;
                iov[iovcnt].iov_len = sizeof(frame.header) - skip;
                ++iovcnt;
                skip = 0;
            } else {
                skip -= sizeof(frame.header);
            }
            if (skip < frame.payload.size()) {
                iov[iovcnt].iov_base =
                    const_cast<char *>(frame.payload.data()) + skip;
                iov[iovcnt].iov_len = frame.payload.size() - skip;
                ++iovcnt;
            }
            skip = 0; // Only the front frame is partially sent.
        }

        // Drop the lock across the syscall: senders keep appending
        // (deque growth never invalidates existing element
        // references, and only the flusher pops), so concurrent load
        // coalesces into the next iteration instead of convoying.
        size_t sent = 0;
        IoStatus status;
        {
            MutexUnlock relock(lock);
            status = sock.sendv(iov, iovcnt, sent);
        }

        if (status == IoStatus::Ok) {
            outCursor += sent;
            while (!outQueue.empty()) {
                OutFrame &front = outQueue.front();
                const size_t frame_bytes =
                    sizeof(front.header) + front.payload.size();
                if (outCursor < frame_bytes)
                    break;
                outCursor -= frame_bytes;
                releaseWireBuffer(std::move(front.payload));
                outQueue.pop_front();
            }
            continue;
        }
        if (status == IoStatus::WouldBlock) {
            if (!writeArmed && poller && !isDead()) {
                writeArmed = true;
                poller->modify(sock.fd(), cookie, true);
                poller->wake();
            }
            break;
        }
        ok = false;
        break;
    }

    flushing = false;
    if (outQueue.empty()) {
        outCursor = 0;
        if (writeArmed && poller && !isDead()) {
            writeArmed = false;
            poller->modify(sock.fd(), cookie, false);
        }
    }
    return ok;
}

void
FramedConnection::shutdown()
{
    bool expected = false;
    if (!dead.compare_exchange_strong(expected, true))
        return;
    if (poller && sock.valid())
        poller->remove(sock.fd());
    // Unblock any peer and concurrent sender, but keep the fd alive:
    // closing here would let the kernel recycle the descriptor while a
    // sender on another thread is still inside sendv().
    sock.shutdownRw();
}

} // namespace musuite

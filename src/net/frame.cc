/**
 * @file
 * Implementation of length-prefixed framing.
 */

#include "net/frame.h"

#include <cstring>

#include "base/logging.h"

namespace musuite {

FramedConnection::FramedConnection(TcpSocket socket, Poller *poller,
                                   void *cookie)
    : sock(std::move(socket)), poller(poller), cookie(cookie)
{}

FramedConnection::~FramedConnection()
{
    shutdown();
}

void
FramedConnection::registerWithPoller()
{
    if (poller && sock.valid())
        poller->add(sock.fd(), cookie, false);
}

bool
FramedConnection::onReadable(
    const std::function<void(std::string_view)> &sink)
{
    assertOnFrameReaderThread();
    if (isDead())
        return false;

    char chunk[64 * 1024];
    while (true) {
        size_t received = 0;
        const IoStatus status = sock.receive(chunk, sizeof(chunk), received);
        if (status == IoStatus::Ok) {
            inbound.append(chunk, received);
            // A full kernel buffer may hold more; keep draining until
            // WouldBlock so level-triggered epoll stays quiet.
            if (received < sizeof(chunk)) {
                // Likely drained; parse what we have first.
            }
            continue;
        }
        if (status == IoStatus::WouldBlock)
            break;
        shutdown();
        return false;
    }

    // Parse complete frames.
    size_t cursor = 0;
    while (inbound.size() - cursor >= 4) {
        uint32_t length;
        std::memcpy(&length, inbound.data() + cursor, 4);
        if (length > maxFrameBytes) {
            MUSUITE_WARN() << "oversized frame (" << length
                           << " bytes); dropping connection";
            shutdown();
            return false;
        }
        if (inbound.size() - cursor - 4 < length)
            break;
        sink(std::string_view(inbound.data() + cursor + 4, length));
        cursor += 4 + size_t(length);
    }
    if (cursor > 0)
        inbound.erase(0, cursor);
    return !isDead();
}

void
FramedConnection::onWritable()
{
    assertOnFrameReaderThread();
    bool ok;
    {
        MutexLock lock(outMutex);
        ok = flushLocked();
    }
    if (!ok)
        shutdown();
}

bool
FramedConnection::sendFrame(std::string_view payload)
{
    if (isDead())
        return false;
    MUSUITE_CHECK(payload.size() <= maxFrameBytes) << "frame too large";

    bool ok;
    {
        MutexLock lock(outMutex);
        const uint32_t length = uint32_t(payload.size());
        char header[4];
        std::memcpy(header, &length, 4);
        outbound.append(header, 4);
        outbound.append(payload.data(), payload.size());
        ok = flushLocked();
    }
    if (!ok)
        shutdown();
    return !isDead();
}

bool
FramedConnection::flushLocked()
{
    while (outOffset < outbound.size()) {
        size_t sent = 0;
        const IoStatus status = sock.send(outbound.data() + outOffset,
                                          outbound.size() - outOffset, sent);
        if (status == IoStatus::Ok) {
            outOffset += sent;
            continue;
        }
        if (status == IoStatus::WouldBlock) {
            if (!writeArmed && poller) {
                writeArmed = true;
                poller->modify(sock.fd(), cookie, true);
                poller->wake();
            }
            return true;
        }
        return false;
    }

    // Fully flushed: compact and drop EPOLLOUT interest.
    outbound.clear();
    outOffset = 0;
    if (writeArmed && poller) {
        writeArmed = false;
        poller->modify(sock.fd(), cookie, false);
    }
    return true;
}

void
FramedConnection::shutdown()
{
    bool expected = false;
    if (!dead.compare_exchange_strong(expected, true))
        return;
    if (poller && sock.valid())
        poller->remove(sock.fd());
    // Unblock any peer and concurrent sender, but keep the fd alive:
    // closing here would let the kernel recycle the descriptor while a
    // sendFrame() caller on another thread is still inside send().
    sock.shutdownRw();
}

} // namespace musuite

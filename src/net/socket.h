/**
 * @file
 * RAII TCP sockets over loopback.
 *
 * µSuite's tiers talk over TCP (the original uses gRPC over a 10 Gb/s
 * network; we run all tiers on one host over loopback, which keeps the
 * full kernel TCP path — softirqs, socket locks, wakeups — that the
 * paper characterizes). Sockets are non-blocking; readiness is driven
 * by the Poller. Send/receive calls are mirrored into the syscall
 * counters as sendmsg/recvmsg, matching the message-oriented calls
 * gRPC issues.
 */

#ifndef MUSUITE_NET_SOCKET_H
#define MUSUITE_NET_SOCKET_H

#include <cstdint>
#include <string>

struct iovec;

namespace musuite {

/** Owned file descriptor. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&other) noexcept : fd(other.fd) { other.fd = -1; }
    Fd &operator=(Fd &&other) noexcept;

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd; }
    bool valid() const { return fd >= 0; }
    int release();
    void reset();

  private:
    int fd = -1;
};

/** Result of a non-blocking transfer attempt. */
enum class IoStatus {
    Ok,        //!< Some bytes moved.
    WouldBlock,//!< Kernel buffer empty/full; wait for readiness.
    Eof,       //!< Peer closed (reads only).
    Error,     //!< Hard failure; connection is dead.
};

/**
 * Non-blocking stream socket with instrumented transfers.
 */
class TcpSocket
{
  public:
    TcpSocket() = default;
    explicit TcpSocket(Fd fd);

    /** Blocking connect to 127.0.0.1:port; non-blocking thereafter. */
    static TcpSocket connectLoopback(uint16_t port);

    /**
     * Try to send bytes. Records NetTx time and sendmsg counts.
     * @param sent Out: bytes actually queued to the kernel.
     */
    IoStatus send(const char *data, size_t length, size_t &sent);

    /**
     * Scatter-gather send: transfer the iovec array in one syscall
     * (sendmsg, so MSG_NOSIGNAL still applies). Same NetTx/sendmsg
     * accounting as send(); this is the batching primitive that lets
     * FramedConnection flush many queued frames per syscall.
     * @param sent Out: bytes actually queued to the kernel (may end
     *        mid-iovec; the caller tracks a byte cursor).
     */
    IoStatus sendv(const struct iovec *iov, int iovcnt, size_t &sent);

    /**
     * Try to receive bytes. Records NetRx time and recvmsg counts.
     * @param received Out: bytes actually read.
     */
    IoStatus receive(char *data, size_t capacity, size_t &received);

    int fd() const { return handle.get(); }
    bool valid() const { return handle.valid(); }
    void close();

    /**
     * Shut down both directions without releasing the fd. Any thread
     * still blocked in send/receive gets an error instead of touching
     * a recycled descriptor; the fd itself is closed by close() or the
     * destructor once no concurrent user remains.
     */
    void shutdownRw();

  private:
    void configure();

    Fd handle;
};

/** Listening socket bound to an ephemeral loopback port. */
class TcpListener
{
  public:
    /** Bind and listen on 127.0.0.1; port 0 picks an ephemeral port. */
    explicit TcpListener(uint16_t port = 0);

    /** Accept one pending connection; invalid socket if none ready. */
    TcpSocket accept();

    uint16_t port() const { return boundPort; }
    int fd() const { return handle.get(); }

  private:
    Fd handle;
    uint16_t boundPort = 0;
};

} // namespace musuite

#endif // MUSUITE_NET_SOCKET_H

/**
 * @file
 * Implementation of instrumented TCP sockets.
 */

#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "base/logging.h"
#include "base/time_util.h"
#include "ostrace/ostrace.h"
#include "ostrace/syscalls.h"

namespace musuite {

Fd &
Fd::operator=(Fd &&other) noexcept
{
    if (this != &other) {
        reset();
        fd = other.fd;
        other.fd = -1;
    }
    return *this;
}

int
Fd::release()
{
    int out = fd;
    fd = -1;
    return out;
}

void
Fd::reset()
{
    if (fd >= 0) {
        countSyscall(Sys::Close);
        ::close(fd);
        fd = -1;
    }
}

TcpSocket::TcpSocket(Fd fd)
    : handle(std::move(fd))
{
    configure();
}

void
TcpSocket::configure()
{
    if (!handle.valid())
        return;
    int flags = fcntl(handle.get(), F_GETFL, 0);
    fcntl(handle.get(), F_SETFL, flags | O_NONBLOCK);
    // Latency-critical RPC: never batch small writes.
    int one = 1;
    setsockopt(handle.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpSocket
TcpSocket::connectLoopback(uint16_t port)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    MUSUITE_CHECK(fd.valid()) << "socket(): " << std::strerror(errno);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        MUSUITE_WARN() << "connect(127.0.0.1:" << port
                       << "): " << std::strerror(errno);
        return TcpSocket();
    }
    return TcpSocket(std::move(fd));
}

IoStatus
TcpSocket::send(const char *data, size_t length, size_t &sent)
{
    sent = 0;
    const int64_t start = nowNanos();
    const ssize_t n = ::send(handle.get(), data, length, MSG_NOSIGNAL);
    countSyscall(Sys::Sendmsg);
    recordOs(OsCategory::NetTx, nowNanos() - start);
    if (n > 0) {
        sent = size_t(n);
        return IoStatus::Ok;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return IoStatus::WouldBlock;
    return IoStatus::Error;
}

IoStatus
TcpSocket::sendv(const struct iovec *iov, int iovcnt, size_t &sent)
{
    sent = 0;
    msghdr msg{};
    // sendmsg never writes through the iovec; the const_cast only
    // bridges the POSIX struct's non-const field.
    msg.msg_iov = const_cast<struct iovec *>(iov);
    msg.msg_iovlen = size_t(iovcnt);
    const int64_t start = nowNanos();
    const ssize_t n = ::sendmsg(handle.get(), &msg, MSG_NOSIGNAL);
    countSyscall(Sys::Sendmsg);
    recordOs(OsCategory::NetTx, nowNanos() - start);
    if (n > 0) {
        sent = size_t(n);
        return IoStatus::Ok;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return IoStatus::WouldBlock;
    return IoStatus::Error;
}

IoStatus
TcpSocket::receive(char *data, size_t capacity, size_t &received)
{
    received = 0;
    const int64_t start = nowNanos();
    const ssize_t n = ::recv(handle.get(), data, capacity, 0);
    countSyscall(Sys::Recvmsg);
    recordOs(OsCategory::NetRx, nowNanos() - start);
    if (n > 0) {
        received = size_t(n);
        return IoStatus::Ok;
    }
    if (n == 0)
        return IoStatus::Eof;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
        return IoStatus::WouldBlock;
    return IoStatus::Error;
}

void
TcpSocket::close()
{
    handle.reset();
}

void
TcpSocket::shutdownRw()
{
    if (handle.valid())
        ::shutdown(handle.get(), SHUT_RDWR);
}

TcpListener::TcpListener(uint16_t port)
{
    handle = Fd(::socket(AF_INET, SOCK_STREAM, 0));
    MUSUITE_CHECK(handle.valid()) << "socket(): " << std::strerror(errno);

    int one = 1;
    setsockopt(handle.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    MUSUITE_CHECK(::bind(handle.get(), reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)) == 0)
        << "bind(): " << std::strerror(errno);
    MUSUITE_CHECK(::listen(handle.get(), 512) == 0)
        << "listen(): " << std::strerror(errno);

    socklen_t len = sizeof(addr);
    getsockname(handle.get(), reinterpret_cast<sockaddr *>(&addr), &len);
    boundPort = ntohs(addr.sin_port);

    int flags = fcntl(handle.get(), F_GETFL, 0);
    fcntl(handle.get(), F_SETFL, flags | O_NONBLOCK);
}

TcpSocket
TcpListener::accept()
{
    const int fd = ::accept(handle.get(), nullptr, nullptr);
    if (fd < 0)
        return TcpSocket();
    return TcpSocket(Fd(fd));
}

} // namespace musuite

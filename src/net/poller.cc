/**
 * @file
 * Implementation of the epoll poller.
 */

#include "net/poller.h"

#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "base/logging.h"
#include "ostrace/syscalls.h"

namespace musuite {

Poller::Poller()
{
    epollFd = epoll_create1(0);
    MUSUITE_CHECK(epollFd >= 0) << "epoll_create1: "
                                << std::strerror(errno);
    wakeFd = eventfd(0, EFD_NONBLOCK);
    MUSUITE_CHECK(wakeFd >= 0) << "eventfd: " << std::strerror(errno);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr; // nullptr cookie marks the wakeup fd.
    MUSUITE_CHECK(epoll_ctl(epollFd, EPOLL_CTL_ADD, wakeFd, &ev) == 0)
        << "epoll_ctl(wakeFd): " << std::strerror(errno);
}

Poller::~Poller()
{
    if (wakeFd >= 0)
        ::close(wakeFd);
    if (epollFd >= 0)
        ::close(epollFd);
}

void
Poller::add(int fd, void *cookie, bool want_write)
{
    MUSUITE_CHECK(cookie != nullptr) << "null poller cookie is reserved";
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? uint32_t(EPOLLOUT) : 0u);
    ev.data.ptr = cookie;
    MUSUITE_CHECK(epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) == 0)
        << "epoll_ctl(ADD): " << std::strerror(errno);
}

void
Poller::modify(int fd, void *cookie, bool want_write)
{
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? uint32_t(EPOLLOUT) : 0u);
    ev.data.ptr = cookie;
    MUSUITE_CHECK(epoll_ctl(epollFd, EPOLL_CTL_MOD, fd, &ev) == 0)
        << "epoll_ctl(MOD): " << std::strerror(errno);
}

void
Poller::remove(int fd)
{
    epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
}

std::vector<PollEvent>
Poller::wait(int timeout_ms)
{
    epoll_event raw[64];
    countSyscall(Sys::EpollPwait);
    const int n = epoll_pwait(epollFd, raw, 64, timeout_ms, nullptr);

    std::vector<PollEvent> events;
    if (n <= 0)
        return events;
    events.reserve(size_t(n));
    for (int i = 0; i < n; ++i) {
        PollEvent event;
        if (raw[i].data.ptr == nullptr) {
            // Drain the wakeup eventfd.
            uint64_t value;
            countSyscall(Sys::Read);
            while (::read(wakeFd, &value, sizeof(value)) > 0) {
            }
            event.isWakeup = true;
        } else {
            event.data = raw[i].data.ptr;
            event.readable = raw[i].events & EPOLLIN;
            event.writable = raw[i].events & EPOLLOUT;
            event.error = raw[i].events & (EPOLLERR | EPOLLHUP);
        }
        events.push_back(event);
    }
    return events;
}

void
Poller::wake()
{
    const uint64_t one = 1;
    countSyscall(Sys::Write);
    [[maybe_unused]] ssize_t n = ::write(wakeFd, &one, sizeof(one));
}

} // namespace musuite

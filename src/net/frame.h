/**
 * @file
 * Length-prefixed message framing over a non-blocking TCP socket.
 *
 * Frames are a 4-byte little-endian payload length followed by the
 * payload. A FramedConnection is read only by its owning poller
 * thread, but frames may be sent from any thread (µSuite workers and
 * response threads complete RPCs from the worker pool).
 *
 * The byte path is built around batching and reuse (the paper's
 * syscall findings, Figs. 11–14: sendmsg/recvmsg dominate mid-tier OS
 * time):
 *
 *  - Outbound frames queue as {header, payload} pairs and flush many
 *    frames per sendmsg via scatter-gather (TcpSocket::sendv). A
 *    single flusher drains the queue with the lock *dropped* across
 *    the syscall; concurrent senders just append and return, so load
 *    coalesces naturally instead of convoying on the kernel.
 *  - cork()/uncork() let callers batch explicitly: a mid-tier issuing
 *    a fan-out (or a worker flushing a batch of responses) corks,
 *    queues everything, and uncorks into one syscall.
 *  - Inbound bytes land directly in a cursor-compacted buffer (no
 *    erase(0, cursor) shuffle), and a short read ends the recv loop —
 *    a short read means the kernel buffer is drained, so the old
 *    "one more recv" was a guaranteed-EAGAIN syscall per event.
 *  - Payload buffers are recycled through the serde wire-buffer pool
 *    (acquireWireBuffer/releaseWireBuffer), so steady-state sends
 *    allocate nothing.
 */

#ifndef MUSUITE_NET_FRAME_H
#define MUSUITE_NET_FRAME_H

#include <atomic>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "base/threading.h"
#include "net/poller.h"
#include "net/socket.h"

namespace musuite {

class FramedConnection
{
  public:
    /** Frames larger than this indicate a corrupt stream. */
    static constexpr uint32_t maxFrameBytes = 64u << 20;

    /** Most frames packed into one sendv (two iovecs per frame). */
    static constexpr size_t maxFramesPerFlush = 32;

    /**
     * @param socket Connected non-blocking socket (takes ownership).
     * @param poller Poller whose thread reads this connection; used to
     *        manage EPOLLOUT interest. May be null for lock-step tests
     *        (then callers drive flush() manually).
     * @param cookie The cookie this connection is registered under.
     */
    FramedConnection(TcpSocket socket, Poller *poller, void *cookie);
    ~FramedConnection();

    /** Register with the poller for read interest. */
    void registerWithPoller();

    /**
     * Drain readable bytes and deliver every complete frame. Must be
     * called on the poller thread.
     *
     * @param sink Called once per frame with a view valid only during
     *        the call.
     * @return false if the peer closed or the stream broke; the
     *         connection is dead afterwards.
     */
    bool onReadable(const std::function<void(std::string_view)> &sink);

    /** Flush pending output after EPOLLOUT. Poller thread only. */
    void onWritable();

    /**
     * Queue one frame and flush as much as the kernel accepts.
     * Callable from any thread. Oversized payloads are rejected
     * (counted under net.frame.oversized_send) without harming the
     * connection.
     * @return false if the frame was rejected or the connection is
     *         dead.
     */
    bool sendFrame(std::string_view payload);

    /**
     * sendFrame() taking ownership of the payload buffer: no copy on
     * the send path, and the buffer is recycled through the wire pool
     * once the kernel has it.
     */
    bool sendFrameOwned(std::string payload);

    /**
     * Write-combining: while corked, sendFrame() only queues; the
     * matching uncork() flushes everything queued since — ideally as
     * one scatter-gather syscall. Nests; callable from any thread.
     */
    void cork();

    /** @return false if the connection died flushing. */
    bool uncork();

    bool isDead() const { return dead.load(std::memory_order_acquire); }
    int fd() const { return sock.fd(); }

    /** Frames rejected for exceeding maxFrameBytes (process-wide). */
    static uint64_t oversizedSendCount();

    /**
     * Mark dead, deregister from the poller, and shut the socket down.
     * The fd itself stays open until destruction so that a concurrent
     * sender in the flush path can never race against fd reuse.
     */
    void shutdown();

  private:
    /** One queued outbound frame: length prefix + payload. */
    struct OutFrame
    {
        char header[4];
        std::string payload;
    };

    /** Append one frame to the outbound queue. */
    void queueLocked(std::string &&payload) REQUIRES(outMutex);

    /**
     * Drain the outbound queue through sendv, releasing `lock` across
     * each syscall (appenders keep making progress; deque references
     * stay valid). Only one thread flushes at a time — later callers
     * see `flushing` and return, leaving their frames to the active
     * flusher. Updates EPOLLOUT interest.
     * @return false on a hard I/O error: the caller must release
     *         outMutex and then call shutdown().
     */
    bool flushLocked(MutexLock &lock) REQUIRES(outMutex);

    TcpSocket sock;
    Poller *poller;
    void *cookie;

    // Inbound state: poller thread only. Unparsed bytes live at
    // [inCursor, inEnd) of `inbound`; compaction slides them to the
    // front (memmove) only when tail space runs out, and the buffer's
    // capacity is kept across events so steady-state reads allocate
    // nothing.
    std::string inbound;
    size_t inCursor = 0;
    size_t inEnd = 0;

    // Outbound state: shared.
    Mutex outMutex{LockRank::frameOut, "net.frame.out"};
    std::deque<OutFrame> outQueue GUARDED_BY(outMutex);
    /** Bytes of the front frame already handed to the kernel. */
    size_t outCursor GUARDED_BY(outMutex) = 0;
    bool flushing GUARDED_BY(outMutex) = false;
    int corkDepth GUARDED_BY(outMutex) = 0;
    bool writeArmed GUARDED_BY(outMutex) = false;

    std::atomic<bool> dead{false};
};

} // namespace musuite

#endif // MUSUITE_NET_FRAME_H

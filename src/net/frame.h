/**
 * @file
 * Length-prefixed message framing over a non-blocking TCP socket.
 *
 * Frames are a 4-byte little-endian payload length followed by the
 * payload. A FramedConnection is read only by its owning poller
 * thread, but frames may be sent from any thread (µSuite workers and
 * response threads complete RPCs from the worker pool): sendFrame
 * appends under a lock, flushes opportunistically, and arms EPOLLOUT +
 * wakes the poller when the kernel buffer fills.
 */

#ifndef MUSUITE_NET_FRAME_H
#define MUSUITE_NET_FRAME_H

#include <atomic>
#include <functional>
#include <string>
#include <string_view>

#include "base/threading.h"
#include "net/poller.h"
#include "net/socket.h"

namespace musuite {

class FramedConnection
{
  public:
    /** Frames larger than this indicate a corrupt stream. */
    static constexpr uint32_t maxFrameBytes = 64u << 20;

    /**
     * @param socket Connected non-blocking socket (takes ownership).
     * @param poller Poller whose thread reads this connection; used to
     *        manage EPOLLOUT interest. May be null for lock-step tests
     *        (then callers drive flush() manually).
     * @param cookie The cookie this connection is registered under.
     */
    FramedConnection(TcpSocket socket, Poller *poller, void *cookie);
    ~FramedConnection();

    /** Register with the poller for read interest. */
    void registerWithPoller();

    /**
     * Drain readable bytes and deliver every complete frame. Must be
     * called on the poller thread.
     *
     * @param sink Called once per frame with a view valid only during
     *        the call.
     * @return false if the peer closed or the stream broke; the
     *         connection is dead afterwards.
     */
    bool onReadable(const std::function<void(std::string_view)> &sink);

    /** Flush pending output after EPOLLOUT. Poller thread only. */
    void onWritable();

    /**
     * Queue one frame and flush as much as the kernel accepts.
     * Callable from any thread.
     * @return false if the connection is dead.
     */
    bool sendFrame(std::string_view payload);

    bool isDead() const { return dead.load(std::memory_order_acquire); }
    int fd() const { return sock.fd(); }

    /**
     * Mark dead, deregister from the poller, and shut the socket down.
     * The fd itself stays open until destruction so that a concurrent
     * sender in flushLocked() can never race against fd reuse.
     */
    void shutdown();

  private:
    /**
     * Flush under lock; updates EPOLLOUT interest.
     * @return false on a hard I/O error: the caller must release
     *         outMutex and then call shutdown().
     */
    bool flushLocked() REQUIRES(outMutex);

    TcpSocket sock;
    Poller *poller;
    void *cookie;

    // Inbound state: poller thread only.
    std::string inbound;

    // Outbound state: shared.
    Mutex outMutex{LockRank::frameOut, "net.frame.out"};
    std::string outbound GUARDED_BY(outMutex);
    size_t outOffset GUARDED_BY(outMutex) = 0;
    bool writeArmed GUARDED_BY(outMutex) = false;

    std::atomic<bool> dead{false};
};

} // namespace musuite

#endif // MUSUITE_NET_FRAME_H

/**
 * @file
 * Epoll-based readiness poller.
 *
 * Each network thread in the µSuite server/client owns one Poller and
 * parks in epoll_pwait (the paper's blocking design; a zero-timeout
 * mode implements the §VII polling alternative). A wakeup eventfd lets
 * other threads (workers completing responses) kick the poller to
 * flush pending writes.
 */

#ifndef MUSUITE_NET_POLLER_H
#define MUSUITE_NET_POLLER_H

#include <cstdint>
#include <vector>

#include "net/socket.h"

namespace musuite {

/** One readiness event delivered by Poller::wait. */
struct PollEvent
{
    void *data = nullptr;  //!< Cookie registered with add().
    bool readable = false;
    bool writable = false;
    bool error = false;
    bool isWakeup = false; //!< The wakeup eventfd fired.
};

class Poller
{
  public:
    Poller();
    ~Poller();

    Poller(const Poller &) = delete;
    Poller &operator=(const Poller &) = delete;

    /**
     * Register a descriptor.
     * @param cookie Returned in PollEvent::data; must stay valid until
     *        remove().
     * @param want_write Also watch for write-readiness.
     */
    void add(int fd, void *cookie, bool want_write = false);

    /** Change write-readiness interest for a registered descriptor. */
    void modify(int fd, void *cookie, bool want_write);

    void remove(int fd);

    /**
     * Wait for events.
     * @param timeout_ms -1 blocks indefinitely (blocking design), 0
     *        returns immediately (polling design).
     */
    std::vector<PollEvent> wait(int timeout_ms);

    /** Wake a blocked wait() from another thread. */
    void wake();

  private:
    int epollFd = -1;
    int wakeFd = -1;
};

} // namespace musuite

#endif // MUSUITE_NET_POLLER_H

/**
 * @file
 * Implementation of thread utilities.
 */

#include "base/threading.h"

#include <pthread.h>

namespace musuite {

void
setCurrentThreadName(const std::string &name)
{
    // The kernel limits names to 15 chars + NUL.
    std::string truncated = name.substr(0, 15);
    pthread_setname_np(pthread_self(), truncated.c_str());
}

ScopedThread::ScopedThread(std::string name, std::function<void()> body)
    : thread([name = std::move(name), body = std::move(body)] {
          setCurrentThreadName(name);
          body();
      })
{}

ScopedThread &
ScopedThread::operator=(ScopedThread &&other)
{
    if (this != &other) {
        join();
        thread = std::move(other.thread);
    }
    return *this;
}

void
ScopedThread::join()
{
    if (thread.joinable())
        thread.join();
}

} // namespace musuite

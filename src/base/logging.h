/**
 * @file
 * Minimal logging and error-reporting facilities for musuite.
 *
 * Follows the gem5 convention of distinguishing panic() (an internal
 * invariant was violated — abort) from fatal() (the user asked for
 * something impossible — clean exit), plus inform()/warn() for status.
 */

#ifndef MUSUITE_BASE_LOGGING_H
#define MUSUITE_BASE_LOGGING_H

#include <cstdlib>
#include <sstream>
#include <string>

namespace musuite {

/** Severity of a log record. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
    Fatal,
};

/**
 * Emit one formatted log line to stderr.
 *
 * @param level Severity; Fatal exits the process, callers of panic abort.
 * @param file Source file of the call site.
 * @param line Source line of the call site.
 * @param msg Fully formatted message body.
 */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &msg);

/** Process-wide minimum severity; records below it are dropped. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {

/** Stream-style log record builder used by the MUSUITE_LOG macro. */
class LogRecord
{
  public:
    LogRecord(LogLevel level, const char *file, int line, bool abort_after)
        : level(level), file(file), line(line), abortAfter(abort_after)
    {}

    ~LogRecord()
    {
        logMessage(level, file, line, stream.str());
        if (abortAfter)
            std::abort();
        if (level == LogLevel::Fatal)
            std::exit(1);
    }

    template <typename T>
    LogRecord &
    operator<<(const T &value)
    {
        stream << value;
        return *this;
    }

  private:
    LogLevel level;
    const char *file;
    int line;
    bool abortAfter;
    std::ostringstream stream;
};

} // namespace detail

} // namespace musuite

#define MUSUITE_LOG(level) \
    ::musuite::detail::LogRecord(level, __FILE__, __LINE__, false)

/** Status message with no connotation of incorrect behaviour. */
#define MUSUITE_INFORM() MUSUITE_LOG(::musuite::LogLevel::Info)
/** Something may not be implemented as well as it should be. */
#define MUSUITE_WARN() MUSUITE_LOG(::musuite::LogLevel::Warn)
/** The user requested something the system cannot do; exits(1). */
#define MUSUITE_FATAL() MUSUITE_LOG(::musuite::LogLevel::Fatal)
/** An internal invariant broke; aborts (may dump core). */
#define MUSUITE_PANIC() \
    ::musuite::detail::LogRecord(::musuite::LogLevel::Fatal, __FILE__, \
                                 __LINE__, true)

/** Assert-like check active in all build types. */
#define MUSUITE_CHECK(cond) \
    if (!(cond)) MUSUITE_PANIC() << "check failed: " #cond << " — "

#endif // MUSUITE_BASE_LOGGING_H

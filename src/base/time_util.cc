/**
 * @file
 * Implementation of monotonic-clock helpers.
 */

#include "base/time_util.h"

#include <cstdio>
#include <ctime>

namespace musuite {

int64_t
nowNanos()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return int64_t(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

void
sleepUntilNanos(int64_t deadline_ns)
{
    timespec ts;
    ts.tv_sec = deadline_ns / 1000000000;
    ts.tv_nsec = deadline_ns % 1000000000;
    while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &ts, nullptr)) {
        // Retry on EINTR; clock_nanosleep with TIMER_ABSTIME resumes
        // against the same absolute deadline so no drift accumulates.
    }
}

void
sleepForNanos(int64_t duration_ns)
{
    sleepUntilNanos(nowNanos() + duration_ns);
}

std::string
formatNanos(int64_t ns)
{
    char buf[64];
    double v = double(ns);
    if (ns < 1000) {
        std::snprintf(buf, sizeof(buf), "%ldns", long(ns));
    } else if (ns < 1000 * 1000) {
        std::snprintf(buf, sizeof(buf), "%.2fus", v / 1e3);
    } else if (ns < 1000LL * 1000 * 1000) {
        std::snprintf(buf, sizeof(buf), "%.2fms", v / 1e6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2fs", v / 1e9);
    }
    return buf;
}

} // namespace musuite

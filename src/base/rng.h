/**
 * @file
 * Deterministic random-number generation for workloads and data sets.
 *
 * Everything in musuite that is random is seeded through one of these
 * generators so that experiments are reproducible under --seed. The core
 * generator is xoshiro256**, which is tiny, fast, and has no global
 * state; distributions (uniform, Gaussian, exponential, Poisson, Zipf)
 * are layered on top of it.
 */

#ifndef MUSUITE_BASE_RNG_H
#define MUSUITE_BASE_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace musuite {

/**
 * xoshiro256** pseudo-random generator. Satisfies the
 * UniformRandomBitGenerator concept so it can also feed <random> if
 * ever needed.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~uint64_t(0); }

    /** Next raw 64-bit output. */
    uint64_t operator()() { return next(); }
    uint64_t next();

    /** Uniform integer in [0, bound) without modulo bias. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Standard normal via Box-Muller (with cached spare). */
    double nextGaussian();

    /** Normal with the given mean and standard deviation. */
    double
    nextGaussian(double mean, double stddev)
    {
        return mean + stddev * nextGaussian();
    }

    /** Exponential with the given rate (mean 1/rate). */
    double nextExponential(double rate);

    /** Poisson-distributed count with the given mean. */
    uint64_t nextPoisson(double mean);

    /** Bernoulli trial with probability p of true. */
    bool nextBool(double p) { return nextDouble() < p; }

    /** Split off an independently seeded child generator. */
    Rng split();

  private:
    uint64_t state[4];
    double spareGaussian = 0.0;
    bool hasSpare = false;
};

/**
 * Zipf(n, s) sampler over ranks 1..n using rejection-inversion
 * (Hörmann & Derflinger), O(1) memory and O(1) expected time per
 * sample. Rank 1 is the most popular element.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of elements (ranks 1..n).
     * @param exponent Skew s > 0; s≈1 approximates natural-language
     *                 word frequencies, s≈0.99 is the YCSB default.
     */
    ZipfSampler(uint64_t n, double exponent);

    /** Draw a rank in [1, n]. */
    uint64_t sample(Rng &rng) const;

    uint64_t size() const { return n; }
    double skew() const { return exponent; }

  private:
    double h(double x) const;
    double hIntegral(double x) const;
    double hIntegralInverse(double x) const;

    uint64_t n;
    double exponent;
    double hIntegralX1;
    double hIntegralN;
    double s;
};

/**
 * Sampler over an explicit discrete distribution (normalized weights),
 * used where exact frequencies matter more than memory (e.g., the
 * synthetic document corpus vocabulary). O(1) per sample via the alias
 * method.
 */
class AliasSampler
{
  public:
    explicit AliasSampler(const std::vector<double> &weights);

    /** Draw an index in [0, weights.size()). */
    uint64_t sample(Rng &rng) const;

    size_t size() const { return prob.size(); }

  private:
    std::vector<double> prob;
    std::vector<uint32_t> alias;
};

} // namespace musuite

#endif // MUSUITE_BASE_RNG_H

/**
 * @file
 * Clock helpers. All latency measurement in musuite uses the monotonic
 * clock expressed in integer nanoseconds, so arithmetic stays exact and
 * cheap on hot paths.
 *
 * These are the *raw* wall-clock primitives. Code on the Clock seam —
 * everything under src/rpc/ and src/services/ — must not call them
 * directly; it reads time from its bound musuite::Clock (base/clock.h)
 * so the same logic runs under the simulated clock. tools/check.sh
 * enforces this.
 */

#ifndef MUSUITE_BASE_TIME_UTIL_H
#define MUSUITE_BASE_TIME_UTIL_H

#include <cstdint>
#include <string>

namespace musuite {

/** Nanoseconds on the monotonic (steady) clock. */
int64_t nowNanos();

/** Microseconds on the monotonic clock (nowNanos() / 1000). */
inline int64_t nowMicros() { return nowNanos() / 1000; }

/**
 * Sleep until the given monotonic deadline. Uses clock_nanosleep for the
 * bulk of the interval; open-loop load generators rely on this to place
 * request send times independently of response times (the defence against
 * coordinated omission).
 */
void sleepUntilNanos(int64_t deadline_ns);

/** Sleep for a relative number of nanoseconds. */
void sleepForNanos(int64_t duration_ns);

/**
 * Format a nanosecond quantity with an adaptive unit, e.g. "17.3us" or
 * "4.25ms", for human-readable reports.
 */
std::string formatNanos(int64_t ns);

} // namespace musuite

#endif // MUSUITE_BASE_TIME_UTIL_H

/**
 * @file
 * Bounded multi-producer/multi-consumer blocking queue.
 *
 * This is the producer-consumer task queue at the heart of the µSuite
 * dispatch architecture (Fig. 8 of the paper): network threads push RPC
 * work, worker threads park on the condition variable and pull. The
 * synchronization primitives are template parameters so the ostrace
 * instrumented mutex/condvar can be dropped in to count futex-analogue
 * operations and measure wakeup latency without perturbing this code.
 */

#ifndef MUSUITE_BASE_QUEUE_H
#define MUSUITE_BASE_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "base/logging.h"

namespace musuite {

/**
 * Blocking bounded FIFO. Closed queues wake all waiters; pop returns
 * nullopt once the queue is closed and drained, which is the worker
 * shutdown signal.
 */
template <typename T,
          // mulint: allow(raw-sync): default only; traced builds pass TracedMutex
          typename Mutex = std::mutex,
          // mulint: allow(raw-sync): default only; traced builds pass TracedCondVar
          typename CondVar = std::condition_variable>
class BlockingQueue
{
  public:
    explicit BlockingQueue(size_t capacity = SIZE_MAX)
        : capacity(capacity)
    {
        MUSUITE_CHECK(capacity > 0) << "queue capacity must be positive";
    }

    /**
     * Push an item, blocking while the queue is full.
     * @return false if the queue was closed (item dropped).
     */
    bool
    push(T item)
    {
        std::unique_lock<Mutex> lock(mutex);
        notFull.wait(lock, [&] { return items.size() < capacity || closed; });
        if (closed)
            return false;
        items.push_back(std::move(item));
        // mulint: allow(raw-sync): unlock-before-notify keeps the waiter off a held mutex
        lock.unlock();
        notEmpty.notify_one();
        return true;
    }

    /**
     * Push without blocking.
     * @return false if full or closed.
     */
    bool
    tryPush(T item)
    {
        {
            std::unique_lock<Mutex> lock(mutex);
            if (closed || items.size() >= capacity)
                return false;
            items.push_back(std::move(item));
        }
        notEmpty.notify_one();
        return true;
    }

    /**
     * Push a whole batch under one lock acquisition and (at most) one
     * wakeup per space-wait round — the batching half of the paper's
     * futex-reduction story: N single push() calls cost up to N
     * notify_one futex wakes, this costs one notify_all.
     * Blocks while the queue is full.
     * @return false if the queue was closed (remaining items dropped).
     */
    bool
    pushAll(std::vector<T> batch)
    {
        size_t next = 0;
        while (next < batch.size()) {
            size_t pushed = 0;
            {
                std::unique_lock<Mutex> lock(mutex);
                notFull.wait(lock, [&] {
                    return items.size() < capacity || closed;
                });
                if (closed)
                    return false;
                while (next < batch.size() && items.size() < capacity) {
                    items.push_back(std::move(batch[next]));
                    ++next;
                    ++pushed;
                }
            }
            if (pushed == 1)
                notEmpty.notify_one();
            else if (pushed > 1)
                notEmpty.notify_all();
        }
        return true;
    }

    /**
     * Push as much of a batch as fits, without blocking, under one
     * lock acquisition. The non-blocking counterpart of pushAll() for
     * producers that shed on overflow instead of exerting
     * backpressure — the murpc server's overload path.
     * @return the items that did not fit, in order (the whole batch
     *         if the queue is closed). Empty means everything landed.
     */
    std::vector<T>
    tryPushAll(std::vector<T> batch)
    {
        size_t pushed = 0;
        {
            std::unique_lock<Mutex> lock(mutex);
            if (!closed) {
                while (pushed < batch.size() &&
                       items.size() < capacity) {
                    items.push_back(std::move(batch[pushed]));
                    ++pushed;
                }
            }
        }
        if (pushed == 1)
            notEmpty.notify_one();
        else if (pushed > 1)
            notEmpty.notify_all();
        batch.erase(batch.begin(),
                    batch.begin() + std::ptrdiff_t(pushed));
        return batch;
    }

    /**
     * Pop an item, blocking while the queue is empty.
     * @return nullopt once closed and drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<Mutex> lock(mutex);
        notEmpty.wait(lock, [&] { return !items.empty() || closed; });
        if (items.empty())
            return std::nullopt;
        T item = std::move(items.front());
        items.pop_front();
        // mulint: allow(raw-sync): unlock-before-notify keeps the waiter off a held mutex
        lock.unlock();
        notFull.notify_one();
        return item;
    }

    /**
     * Pop up to `max` items in one lock acquisition, blocking while
     * the queue is empty — the consumer half of batch dispatch: a
     * worker drains a clump of requests with one futex round instead
     * of one per request.
     * @return empty vector once closed and drained (shutdown signal).
     */
    std::vector<T>
    popMany(size_t max)
    {
        std::vector<T> out;
        size_t popped = 0;
        {
            std::unique_lock<Mutex> lock(mutex);
            notEmpty.wait(lock, [&] { return !items.empty() || closed; });
            while (!items.empty() && out.size() < max) {
                out.push_back(std::move(items.front()));
                items.pop_front();
                ++popped;
            }
        }
        if (popped == 1)
            notFull.notify_one();
        else if (popped > 1)
            notFull.notify_all();
        return out;
    }

    /** Pop without blocking; nullopt if empty. */
    std::optional<T>
    tryPop()
    {
        std::unique_lock<Mutex> lock(mutex);
        if (items.empty())
            return std::nullopt;
        T item = std::move(items.front());
        items.pop_front();
        // mulint: allow(raw-sync): unlock-before-notify keeps the waiter off a held mutex
        lock.unlock();
        notFull.notify_one();
        return item;
    }

    /** Close the queue and wake every waiter. Idempotent. */
    void
    close()
    {
        {
            std::unique_lock<Mutex> lock(mutex);
            closed = true;
        }
        notEmpty.notify_all();
        notFull.notify_all();
    }

    bool
    isClosed() const
    {
        std::unique_lock<Mutex> lock(mutex);
        return closed;
    }

    size_t
    size() const
    {
        std::unique_lock<Mutex> lock(mutex);
        return items.size();
    }

  private:
    // mulint: allow(guarded-by): Mutex is a template parameter; capability macros need the concrete annotated type
    mutable Mutex mutex;
    CondVar notEmpty;
    CondVar notFull;
    std::deque<T> items;
    size_t capacity;
    bool closed = false;
};

} // namespace musuite

#endif // MUSUITE_BASE_QUEUE_H

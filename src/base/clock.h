/**
 * @file
 * The Clock seam: one interface through which the RPC resilience layer
 * (and anything else that schedules future work) reads time and arms
 * one-shot timers, so the same protocol code runs against the real
 * monotonic clock *or* a deterministic simulated clock.
 *
 * Three bindings exist:
 *
 *  - RealClock (here): wall time via the monotonic clock plus one
 *    lazily started timer thread parked on a condvar over a
 *    deadline-ordered heap. This is the default and the only binding
 *    production code ever sees.
 *  - SimClock (simkernel/simclock.h): virtual time advanced by an
 *    event loop; schedule() enqueues an event, nothing waits on wall
 *    time, and a seeded scenario replays byte-identically.
 *  - In-process: LocalChannel plus an unstarted Server under either
 *    clock — the transport is a function call, the clock still decides
 *    deadlines and retries.
 *
 * DETERMINISM CONTRACT: code on the seam must obtain *all* time from
 * its bound Clock — absolute deadlines pinned with nowNanos() and
 * future work armed with schedule() — and must never compare an
 * absolute timestamp from one Clock against one from another. Relative
 * durations (wire budgets, retry-after hints, backoff delays) are
 * clock-free and may cross bindings. tools/check.sh enforces the
 * narrow waist by rejecting direct ::nowNanos() calls inside src/rpc/
 * and src/services/.
 */

#ifndef MUSUITE_BASE_CLOCK_H
#define MUSUITE_BASE_CLOCK_H

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "base/threading.h"

namespace musuite {

/**
 * Time source + one-shot timer service. Implementations must make
 * nowNanos() monotonic and must run each scheduled callback at most
 * once; cancel() prevents a not-yet-fired callback from ever running.
 */
class Clock
{
  public:
    using TimerId = uint64_t;

    virtual ~Clock() = default;

    /** Nanoseconds on this clock's monotonic timeline. */
    virtual int64_t nowNanos() = 0;

    /**
     * Run `fn` once `delay_ns` has elapsed on this clock (immediately
     * — but still from the clock's dispatch context — for delays
     * <= 0). Callbacks should be short or hand off elsewhere: they
     * share one dispatch context with every other armed timer.
     */
    virtual TimerId schedule(int64_t delay_ns,
                             std::function<void()> fn) = 0;

    /**
     * Cancel an armed timer. Returns true iff the callback had not
     * fired (and now never will). Safe to call with stale or zero ids.
     */
    virtual bool cancel(TimerId id) = 0;

    /** Timers currently armed (tests / leak checks). */
    virtual size_t pendingTimers() const = 0;

    /** True for virtual-time bindings (diagnostics, test guards). */
    virtual bool isSimulated() const { return false; }
};

/**
 * The wall-clock binding: monotonic time plus a shared timer thread.
 * One lazily started thread parks on a condvar over a deadline-ordered
 * heap; arming and cancelling are O(log n) under a single mutex, which
 * is ample for the per-RPC rates the mid-tiers see.
 *
 * Cancellation is lazy — the heap entry stays until it surfaces — but
 * bounded: when dead heap entries outnumber live timers the heap is
 * compacted in place, so a retry/hedge-heavy client that cancels on
 * fast success cannot grow the heap without bound.
 */
class RealClock final : public Clock
{
  public:
    RealClock();
    ~RealClock() override;

    RealClock(const RealClock &) = delete;
    RealClock &operator=(const RealClock &) = delete;

    int64_t nowNanos() override;

    /**
     * See Clock::schedule. If the clock is already stopping (its
     * destructor has begun — static teardown), the callback runs
     * inline on the calling thread and 0 is returned: a callback
     * armed after the timer thread has been told to exit would
     * otherwise never fire, silently leaking whatever completion it
     * carried.
     */
    TimerId schedule(int64_t delay_ns, std::function<void()> fn) override;

    bool cancel(TimerId id) override;
    size_t pendingTimers() const override;

    /** Heap slots including dead (cancelled) ones — compaction tests. */
    size_t timerHeapSize() const;

  private:
    struct Armed
    {
        int64_t deadlineNs;
        std::function<void()> fn;
    };

    void timerMain();
    /** Rebuild the heap from the live timers. Call with mutex held. */
    void compactHeap();

    mutable Mutex mutex{LockRank::timer, "base.clock"};
    CondVar wakeup;
    /** Armed timers by id; the heap holds (deadline, id) references. */
    std::map<TimerId, Armed> armed GUARDED_BY(mutex);
    std::priority_queue<std::pair<int64_t, TimerId>,
                        std::vector<std::pair<int64_t, TimerId>>,
                        std::greater<>>
        heap GUARDED_BY(mutex);
    TimerId nextId GUARDED_BY(mutex) = 1;
    bool started GUARDED_BY(mutex) = false;
    bool stopping GUARDED_BY(mutex) = false;
    std::thread thread;
};

/**
 * Process-wide RealClock shared by every channel. The backing thread
 * starts on first use and stops at static destruction; callbacks must
 * not assume they run before program exit.
 */
Clock &realClock();

/**
 * The ambient clock new channels/servers/breakers bind at
 * construction: realClock() unless overridden. The override exists so
 * a test or sim scenario can build an entire object graph on a
 * SimClock without threading a clock parameter through every
 * constructor; it is process-global and meant to be flipped only from
 * single-threaded setup code (use ScopedClock).
 */
Clock &currentClock();

/** Override the ambient clock; null restores realClock(). */
void setCurrentClock(Clock *clock);

/** RAII ambient-clock override for sim scenarios and tests. */
class ScopedClock
{
  public:
    explicit ScopedClock(Clock &clock);
    ~ScopedClock();

    ScopedClock(const ScopedClock &) = delete;
    ScopedClock &operator=(const ScopedClock &) = delete;

  private:
    Clock *previous;
};

} // namespace musuite

#endif // MUSUITE_BASE_CLOCK_H

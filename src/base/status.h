/**
 * @file
 * Lightweight Status / Result error-propagation types used across the
 * musuite RPC surface, mirroring gRPC's status-code vocabulary.
 */

#ifndef MUSUITE_BASE_STATUS_H
#define MUSUITE_BASE_STATUS_H

#include <string>
#include <utility>
#include <variant>

#include "base/logging.h"

namespace musuite {

/** Error codes; a deliberately small subset of the gRPC code space. */
enum class StatusCode {
    Ok = 0,
    Cancelled,
    InvalidArgument,
    DeadlineExceeded,
    NotFound,
    AlreadyExists,
    ResourceExhausted,
    FailedPrecondition,
    Unimplemented,
    Internal,
    Unavailable,
};

/** Human-readable name of a status code. */
inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:                 return "OK";
      case StatusCode::Cancelled:          return "CANCELLED";
      case StatusCode::InvalidArgument:    return "INVALID_ARGUMENT";
      case StatusCode::DeadlineExceeded:   return "DEADLINE_EXCEEDED";
      case StatusCode::NotFound:           return "NOT_FOUND";
      case StatusCode::AlreadyExists:      return "ALREADY_EXISTS";
      case StatusCode::ResourceExhausted:  return "RESOURCE_EXHAUSTED";
      case StatusCode::FailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::Unimplemented:      return "UNIMPLEMENTED";
      case StatusCode::Internal:           return "INTERNAL";
      case StatusCode::Unavailable:        return "UNAVAILABLE";
    }
    return "UNKNOWN";
}

/**
 * Outcome of an operation: a code plus an optional message. Statuses are
 * cheap to copy when OK (empty message).
 */
class [[nodiscard]] Status
{
  public:
    Status() : _code(StatusCode::Ok) {}
    Status(StatusCode code, std::string message)
        : _code(code), _message(std::move(message))
    {}

    static Status ok() { return Status(); }

    bool isOk() const { return _code == StatusCode::Ok; }
    StatusCode code() const { return _code; }
    const std::string &message() const { return _message; }

    /**
     * Server-suggested retry-after delay, carried on RESOURCE_EXHAUSTED
     * rejections from an overloaded server (0 = no hint). The retry
     * layer uses it as a floor under its computed backoff so a shedding
     * server controls the pace of the retries it will see.
     */
    int64_t retryAfterNs() const { return _retryAfterNs; }
    void setRetryAfterNs(int64_t ns) { _retryAfterNs = ns < 0 ? 0 : ns; }

    /** Render as "CODE: message" for logs. */
    std::string
    toString() const
    {
        if (isOk())
            return "OK";
        return std::string(statusCodeName(_code)) + ": " + _message;
    }

    bool
    operator==(const Status &other) const
    {
        return _code == other._code;
    }

  private:
    StatusCode _code;
    std::string _message;
    int64_t _retryAfterNs = 0;
};

/**
 * A value or a non-OK Status. Minimal expected-like type; access to the
 * value of an errored Result panics, so callers must test first.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : _state(std::move(value)) {}
    Result(Status status) : _state(std::move(status))
    {
        MUSUITE_CHECK(!std::get<Status>(_state).isOk())
            << "Result constructed from OK status without a value";
    }

    bool isOk() const { return std::holds_alternative<T>(_state); }

    const Status &
    status() const
    {
        static const Status ok_status = Status::ok();
        if (isOk())
            return ok_status;
        return std::get<Status>(_state);
    }

    T &
    value()
    {
        MUSUITE_CHECK(isOk()) << "accessing value of " << status().toString();
        return std::get<T>(_state);
    }

    const T &
    value() const
    {
        MUSUITE_CHECK(isOk()) << "accessing value of " << status().toString();
        return std::get<T>(_state);
    }

    T
    take()
    {
        MUSUITE_CHECK(isOk()) << "taking value of " << status().toString();
        return std::move(std::get<T>(_state));
    }

  private:
    std::variant<T, Status> _state;
};

} // namespace musuite

#endif // MUSUITE_BASE_STATUS_H

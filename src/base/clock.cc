/**
 * @file
 * RealClock (wall time + shared timer thread) and the ambient-clock
 * registry. This file is the real binding of the Clock seam: the only
 * place on the RPC side of the tree that may read the raw monotonic
 * clock directly.
 */

#include "base/clock.h"

#include <atomic>

#include "base/time_util.h"

namespace musuite {

RealClock::RealClock() = default;

RealClock::~RealClock()
{
    {
        MutexLock guard(mutex);
        stopping = true;
    }
    wakeup.notifyAll();
    if (thread.joinable())
        thread.join();
}

int64_t
RealClock::nowNanos()
{
    return musuite::nowNanos();
}

Clock::TimerId
RealClock::schedule(int64_t delay_ns, std::function<void()> fn)
{
    const int64_t deadline =
        musuite::nowNanos() + (delay_ns > 0 ? delay_ns : 0);
    TimerId id;
    {
        MutexLock guard(mutex);
        if (stopping) {
            // The timer thread has been told to exit (or never will
            // start again): an entry armed now would sit in the heap
            // forever and its callback would silently never run. Fire
            // it inline instead — the caller is mid-teardown, where
            // "immediately on this thread" beats "never".
            MutexUnlock relock(guard);
            fn();
            return 0;
        }
        id = nextId++;
        armed.emplace(id, Armed{deadline, std::move(fn)});
        heap.emplace(deadline, id);
        if (!started) {
            started = true;
            thread = std::thread([this] { timerMain(); });
        }
    }
    wakeup.notifyOne();
    return id;
}

bool
RealClock::cancel(TimerId id)
{
    // Lazy cancellation: the heap entry stays and is skipped when it
    // surfaces, so cancel never has to search the heap — but a
    // cancel-heavy workload (fast successes under hedging) must not
    // accumulate dead entries, so compact once they are the majority.
    MutexLock guard(mutex);
    const bool live = armed.erase(id) > 0;
    if (live && heap.size() >= 64 && heap.size() > 2 * armed.size())
        compactHeap();
    return live;
}

void
RealClock::compactHeap()
{
    std::vector<std::pair<int64_t, TimerId>> entries;
    entries.reserve(armed.size());
    for (const auto &[id, timer] : armed)
        entries.emplace_back(timer.deadlineNs, id);
    heap = std::priority_queue<std::pair<int64_t, TimerId>,
                               std::vector<std::pair<int64_t, TimerId>>,
                               std::greater<>>(std::greater<>(),
                                               std::move(entries));
    // No wakeup needed: compaction never makes the earliest *live*
    // deadline earlier, so the timer thread's current wait is valid.
}

size_t
RealClock::pendingTimers() const
{
    MutexLock guard(mutex);
    return armed.size();
}

size_t
RealClock::timerHeapSize() const
{
    MutexLock guard(mutex);
    return heap.size();
}

void
RealClock::timerMain()
{
    setCurrentThreadName("clk-timer");
    setCurrentThreadRole(ThreadRole::timer);
    MutexLock lock(mutex);
    while (!stopping) {
        // Drop cancelled heads so the wait below targets a live timer.
        while (!heap.empty() && armed.find(heap.top().second) ==
                                    armed.end()) {
            heap.pop();
        }
        if (heap.empty()) {
            wakeup.wait(lock);
            continue;
        }
        const int64_t deadline = heap.top().first;
        const int64_t now = musuite::nowNanos();
        if (now < deadline) {
            wakeup.waitFor(lock, deadline - now);
            continue;
        }
        const TimerId id = heap.top().second;
        heap.pop();
        auto it = armed.find(id);
        if (it == armed.end())
            continue; // Cancelled while due.
        std::function<void()> fn = std::move(it->second.fn);
        armed.erase(it);
        {
            MutexUnlock relock(lock);
            fn(); // May re-arm timers; runs without the lock.
        }
    }
}

Clock &
realClock()
{
    static RealClock instance;
    return instance;
}

namespace {
std::atomic<Clock *> ambientClock{nullptr};
} // namespace

Clock &
currentClock()
{
    Clock *clock = ambientClock.load(std::memory_order_acquire);
    return clock ? *clock : realClock();
}

void
setCurrentClock(Clock *clock)
{
    ambientClock.store(clock, std::memory_order_release);
}

ScopedClock::ScopedClock(Clock &clock)
    : previous(ambientClock.exchange(&clock, std::memory_order_acq_rel))
{
}

ScopedClock::~ScopedClock()
{
    ambientClock.store(previous, std::memory_order_release);
}

} // namespace musuite

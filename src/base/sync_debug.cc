/**
 * @file
 * Implementation of the lock-rank checker and thread-role registry.
 *
 * The checker deliberately uses raw std primitives and fprintf for its
 * own bookkeeping: it must never re-enter the ranked wrappers it
 * polices, and its abort paths must work while arbitrary application
 * locks are held.
 */

#include "base/sync_debug.h"

#include <cstdio>
#include <cstdlib>

#if defined(MUSUITE_DEBUG_SYNC) && MUSUITE_DEBUG_SYNC
#include <execinfo.h>

#include <map>
#include <mutex>
#include <utility>
#include <vector>
#endif

namespace musuite {

const char *
lockRankName(LockRank rank)
{
    switch (rank) {
      case LockRank::unranked:        return "unranked";
      case LockRank::loadgen:         return "loadgen";
      case LockRank::harness:         return "harness";
      case LockRank::graphNode:       return "graph.node";
      case LockRank::fanout:          return "fanout";
      case LockRank::call:            return "rpc.call";
      case LockRank::overload:        return "rpc.overload";
      case LockRank::ejection:        return "rpc.ejection";
      case LockRank::peerHealth:      return "rpc.health";
      case LockRank::faultInjector:   return "rpc.fault";
      case LockRank::admission:       return "rpc.admission";
      case LockRank::clientConn:      return "rpc.client.conn";
      case LockRank::serverConns:     return "rpc.server.conns";
      case LockRank::queue:           return "queue";
      case LockRank::timer:           return "rpc.timers";
      case LockRank::kvShard:         return "kv.shard";
      case LockRank::frameOut:        return "net.frame.out";
      case LockRank::wirePool:        return "serde.wirepool";
      case LockRank::osTraceRegistry: return "ostrace.registry";
      case LockRank::osTraceLocal:    return "ostrace.local";
      case LockRank::counters:        return "stats.counters";
      case LockRank::latch:           return "latch";
      case LockRank::logSink:         return "log.sink";
    }
    return "?";
}

const char *
threadRoleName(ThreadRole role)
{
    switch (role) {
      case ThreadRole::unknown:    return "unknown";
      case ThreadRole::poller:     return "poller";
      case ThreadRole::worker:     return "worker";
      case ThreadRole::completion: return "completion";
      case ThreadRole::timer:      return "timer";
      case ThreadRole::loadgen:    return "loadgen";
    }
    return "?";
}

namespace {
thread_local ThreadRole t_role = ThreadRole::unknown;
} // namespace

void
setCurrentThreadRole(ThreadRole role)
{
    t_role = role;
}

ThreadRole
currentThreadRole()
{
    return t_role;
}

#if defined(MUSUITE_DEBUG_SYNC) && MUSUITE_DEBUG_SYNC

namespace syncdbg {
namespace {

constexpr int maxStackDepth = 32;

/** One lock the calling thread currently holds. */
struct HeldLock
{
    const void *mutex;
    LockRank rank;
    const char *name;
};

/**
 * Fixed-size and trivially destructible on purpose: ranked locks are
 * still taken during thread teardown (e.g. by other thread_local
 * destructors deregistering from ostrace), and destruction order
 * between thread_locals is unspecified — a std::vector here would be
 * a use-after-destroy.
 */
constexpr size_t maxHeldLocks = 64;
thread_local HeldLock t_held[maxHeldLocks];
thread_local size_t t_held_count = 0;

/** Backtrace captured when an acquisition edge was first observed. */
struct EdgeInfo
{
    const char *fromName;
    const char *toName;
    void *stack[maxStackDepth];
    int depth;
};

/**
 * Graph bookkeeping. Guarded by a plain std::mutex: the checker runs
 * *around* application lock operations, never inside another checker
 * call on the same thread, so this lock is a leaf by construction.
 */
std::mutex g_graph_mutex;

/** Node ids: ranked locks collapse to their rank class; unranked
 *  locks are per-instance. */
uint64_t g_next_instance_node = 1ull << 32;
std::map<const void *, uint64_t> *g_instance_nodes;

/** Acquisition edges (from-node -> to-node). */
std::map<std::pair<uint64_t, uint64_t>, EdgeInfo> *g_edges;

uint64_t
nodeForLocked(const void *mutex, LockRank rank)
{
    if (rank != LockRank::unranked)
        return uint64_t(int(rank));
    if (!g_instance_nodes)
        g_instance_nodes = new std::map<const void *, uint64_t>();
    auto [it, inserted] =
        g_instance_nodes->emplace(mutex, g_next_instance_node);
    if (inserted)
        ++g_next_instance_node;
    return it->second;
}

void
printBacktrace(void *const *stack, int depth)
{
    if (depth > 0)
        backtrace_symbols_fd(stack, depth, 2 /* stderr */);
}

void
printCurrentBacktrace()
{
    void *stack[maxStackDepth];
    const int depth = backtrace(stack, maxStackDepth);
    printBacktrace(stack, depth);
}

void
printHeldLocks()
{
    std::fprintf(stderr, "  held locks (outermost first):\n");
    for (size_t i = 0; i < t_held_count; ++i) {
        const HeldLock &held = t_held[i];
        std::fprintf(stderr, "    %-20s rank %3d  (%p)\n",
                     held.name ? held.name : lockRankName(held.rank),
                     int(held.rank), held.mutex);
    }
}

[[noreturn]] void
abortSyncDebug()
{
    std::fflush(stderr);
    std::abort();
}

/** Depth-first search: is `target` reachable from `from`? Returns the
 *  first edge of a found path via `first_edge`. */
bool
reachableLocked(uint64_t from, uint64_t target,
                std::vector<uint64_t> &visited,
                const EdgeInfo **first_edge)
{
    for (uint64_t seen : visited) {
        if (seen == from)
            return false;
    }
    visited.push_back(from);
    if (!g_edges)
        return false;
    auto it = g_edges->lower_bound({from, 0});
    for (; it != g_edges->end() && it->first.first == from; ++it) {
        if (it->first.second == target ||
            reachableLocked(it->first.second, target, visited,
                            nullptr)) {
            if (first_edge)
                *first_edge = &it->second;
            return true;
        }
    }
    return false;
}

} // namespace

void
checkAcquire(const void *mutex, LockRank rank, const char *name)
{
    if (!name)
        name = lockRankName(rank);

    for (size_t i = 0; i < t_held_count; ++i) {
        const HeldLock &held = t_held[i];
        if (held.mutex == mutex) {
            std::fprintf(stderr,
                         "musuite sync_debug: recursive acquisition of "
                         "\"%s\" (rank %d, %p)\n",
                         name, int(rank), mutex);
            printHeldLocks();
            std::fprintf(stderr, "  acquisition stack:\n");
            printCurrentBacktrace();
            abortSyncDebug();
        }
        if (rank != LockRank::unranked &&
            held.rank != LockRank::unranked && held.rank >= rank) {
            std::fprintf(
                stderr,
                "musuite sync_debug: lock rank violation: acquiring "
                "\"%s\" (rank %d) while holding \"%s\" (rank %d)\n",
                name, int(rank),
                held.name ? held.name : lockRankName(held.rank),
                int(held.rank));
            printHeldLocks();
            std::fprintf(stderr, "  acquisition stack:\n");
            printCurrentBacktrace();
            abortSyncDebug();
        }
    }

    if (t_held_count == 0)
        return;

    // Record the (outermost-held -> acquiring) edge and look for a
    // cycle. The innermost held lock is the direct predecessor.
    const HeldLock &top = t_held[t_held_count - 1];
    std::lock_guard<std::mutex> guard(g_graph_mutex);
    const uint64_t from = nodeForLocked(top.mutex, top.rank);
    const uint64_t to = nodeForLocked(mutex, rank);
    if (from == to)
        return; // Same lock class; rank check already vetted order.
    if (!g_edges)
        g_edges =
            new std::map<std::pair<uint64_t, uint64_t>, EdgeInfo>();
    if (g_edges->count({from, to}))
        return; // Known-good edge.

    // Adding from->to closes a cycle iff `from` is reachable from
    // `to` through existing edges.
    std::vector<uint64_t> visited;
    const EdgeInfo *reverse_edge = nullptr;
    if (reachableLocked(to, from, visited, &reverse_edge)) {
        std::fprintf(
            stderr,
            "musuite sync_debug: lock acquisition cycle: acquiring "
            "\"%s\" (%p) while holding \"%s\" (%p) inverts an "
            "established order\n",
            name, mutex,
            top.name ? top.name : lockRankName(top.rank), top.mutex);
        printHeldLocks();
        std::fprintf(stderr, "  this acquisition:\n");
        printCurrentBacktrace();
        if (reverse_edge) {
            std::fprintf(
                stderr,
                "  conflicting order \"%s\" -> \"%s\" established "
                "here:\n",
                reverse_edge->fromName, reverse_edge->toName);
            printBacktrace(reverse_edge->stack, reverse_edge->depth);
        }
        abortSyncDebug();
    }

    EdgeInfo info;
    info.fromName = top.name ? top.name : lockRankName(top.rank);
    info.toName = name;
    info.depth = backtrace(info.stack, maxStackDepth);
    g_edges->emplace(std::make_pair(from, to), info);
}

void
recordAcquired(const void *mutex, LockRank rank, const char *name)
{
    if (t_held_count == maxHeldLocks) {
        std::fprintf(stderr,
                     "musuite sync_debug: more than %zu locks held by "
                     "one thread — raise maxHeldLocks or fix the "
                     "caller\n",
                     maxHeldLocks);
        abortSyncDebug();
    }
    t_held[t_held_count++] = {mutex, rank,
                              name ? name : lockRankName(rank)};
}

void
recordReleased(const void *mutex)
{
    for (size_t i = t_held_count; i-- > 0;) {
        if (t_held[i].mutex == mutex) {
            for (size_t j = i + 1; j < t_held_count; ++j)
                t_held[j - 1] = t_held[j];
            --t_held_count;
            return;
        }
    }
    // Releasing a lock we never saw acquired: tolerated (e.g. a lock
    // taken before this TU's checks were enabled).
}

size_t
heldLockCount()
{
    return t_held_count;
}

void
assertRole(ThreadRole expected, const char *where)
{
    const ThreadRole current = currentThreadRole();
    if (current == ThreadRole::unknown || current == expected)
        return;
    std::fprintf(stderr,
                 "musuite sync_debug: thread role violation: %s "
                 "reached from a \"%s\" thread (expected \"%s\")\n",
                 where, threadRoleName(current),
                 threadRoleName(expected));
    printCurrentBacktrace();
    abortSyncDebug();
}

void
assertRoleOneOf(std::initializer_list<ThreadRole> allowed,
                const char *where)
{
    const ThreadRole current = currentThreadRole();
    if (current == ThreadRole::unknown)
        return;
    for (ThreadRole role : allowed) {
        if (current == role)
            return;
    }
    std::fprintf(stderr,
                 "musuite sync_debug: thread role violation: %s "
                 "reached from a \"%s\" thread\n",
                 where, threadRoleName(current));
    printCurrentBacktrace();
    abortSyncDebug();
}

} // namespace syncdbg

#endif // MUSUITE_DEBUG_SYNC

} // namespace musuite

/**
 * @file
 * Thread utilities: annotated synchronization primitives (Mutex,
 * MutexLock, CondVar), named joining threads, and a small countdown
 * latch used to synchronize fan-out completion (the "count down and
 * merge" step of the µSuite mid-tier response path).
 *
 * Mutex/MutexLock/CondVar are thin wrappers over the std types that
 * carry Clang thread-safety annotations (see thread_annotations.h) and,
 * in MUSUITE_DEBUG_SYNC builds, feed the runtime lock-rank checker
 * (see sync_debug.h). In release builds on GCC they compile down to
 * exactly the raw std types plus two dead pointer-sized members.
 *
 * CondVar deliberately has no predicate-taking wait overloads: a lambda
 * cannot carry a REQUIRES annotation, so predicate waits would hide
 * guarded-member accesses from the analysis. Callers write the explicit
 * loop — `while (!cond) cv.wait(lock);` — inside the annotated
 * function body instead.
 */

#ifndef MUSUITE_BASE_THREADING_H
#define MUSUITE_BASE_THREADING_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/sync_debug.h"
#include "base/thread_annotations.h"

namespace musuite {

/**
 * Annotated mutex. Construct with a LockRank (and optionally a name)
 * to opt into the rank order check; default construction leaves it
 * unranked (cycle detection still applies in debug-sync builds).
 */
class CAPABILITY("mutex") Mutex
{
  public:
    // constexpr like std::mutex's, so namespace-scope instances are
    // constant-initialized and safe to use during static init.
    constexpr Mutex() noexcept = default;
    constexpr explicit Mutex(LockRank rank,
                             const char *name = nullptr) noexcept
        : debugRank(rank), debugName(name)
    {}

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() ACQUIRE()
    {
        syncdbg::checkAcquire(this, debugRank, debugName);
        inner.lock();
        syncdbg::recordAcquired(this, debugRank, debugName);
    }

    bool
    try_lock() TRY_ACQUIRE(true)
    {
        // No rank check: try_lock cannot deadlock, and callers use it
        // exactly where the canonical order must be bypassed.
        if (!inner.try_lock())
            return false;
        syncdbg::recordAcquired(this, debugRank, debugName);
        return true;
    }

    void
    unlock() RELEASE()
    {
        syncdbg::recordReleased(this);
        inner.unlock();
    }

    LockRank rank() const { return debugRank; }

  private:
    friend class CondVar;

    std::mutex inner;
    LockRank debugRank = LockRank::unranked;
    const char *debugName = nullptr;
};

/**
 * RAII guard for Mutex. Relockable: unlock() early to call out without
 * the lock, lock() to reacquire; the destructor releases only if held.
 * Satisfies BasicLockable so CondVar can wait on it directly.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex) : target(mutex)
    {
        target.lock();
        held = true;
    }

    ~MutexLock() RELEASE()
    {
        if (held)
            target.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    void
    unlock() RELEASE()
    {
        target.unlock();
        held = false;
    }

    void
    lock() ACQUIRE()
    {
        target.lock();
        held = true;
    }

    bool ownsLock() const { return held; }

  private:
    friend class CondVar;

    Mutex &target;
    bool held = false;
};

/**
 * Scoped inversion of MutexLock: releases the lock on construction and
 * reacquires it when the scope ends. Replaces manual
 * `lock.unlock(); ...; lock.lock();` windows (which leak the lock in
 * the released state if the middle throws or returns early) around
 * callbacks and syscalls that must run unlocked.
 *
 *     MutexLock lock(mutex);
 *     ...
 *     {
 *         MutexUnlock relock(lock);
 *         callback(); // Runs without the lock; reacquired at `}`.
 *     }
 *
 * The reacquisition goes through MutexLock::lock(), so the debug-sync
 * held-lock stack and rank checks stay accurate across the window.
 */
class SCOPED_CAPABILITY MutexUnlock
{
  public:
    explicit MutexUnlock(MutexLock &lock) RELEASE(lock) : target(lock)
    {
        target.unlock();
    }

    ~MutexUnlock() ACQUIRE() { target.lock(); }

    MutexUnlock(const MutexUnlock &) = delete;
    MutexUnlock &operator=(const MutexUnlock &) = delete;

  private:
    MutexLock &target;
};

/**
 * Condition variable paired with Mutex/MutexLock. The wait path goes
 * through MutexLock's lock()/unlock so the debug-sync held-lock stack
 * stays accurate across the block.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release `lock`, block, reacquire. Spurious wakeups
     *  happen; always wait in a `while (!condition)` loop. */
    void
    wait(MutexLock &lock)
    {
        inner.wait(lock);
    }

    /** wait() with a relative timeout. Returns false on timeout. */
    bool
    waitFor(MutexLock &lock, int64_t timeoutNs)
    {
        return inner.wait_for(lock,
                              std::chrono::nanoseconds(timeoutNs)) ==
               std::cv_status::no_timeout;
    }

    void notifyOne() { inner.notify_one(); }
    void notifyAll() { inner.notify_all(); }

  private:
    std::condition_variable_any inner;
};

/** Name the calling thread (visible in /proc and debuggers). */
void setCurrentThreadName(const std::string &name);

/**
 * A joining thread with a name. Mirrors std::jthread join-on-destroy
 * semantics without the stop-token machinery we do not need.
 */
class ScopedThread
{
  public:
    ScopedThread() = default;
    ScopedThread(std::string name, std::function<void()> body);
    ~ScopedThread() { join(); }

    ScopedThread(ScopedThread &&) = default;
    ScopedThread &operator=(ScopedThread &&other);

    ScopedThread(const ScopedThread &) = delete;
    ScopedThread &operator=(const ScopedThread &) = delete;

    void join();
    bool joinable() const { return thread.joinable(); }

  private:
    std::thread thread;
};

/**
 * Countdown latch: constructed with the fan-out width, counted down by
 * leaf response handlers, waited on by whoever merges. The last
 * countDown() wakes waiters.
 */
class CountdownLatch
{
  public:
    explicit CountdownLatch(uint32_t count) : remaining(count) {}

    /** Decrement; returns true iff this call released the latch. */
    bool
    countDown()
    {
        MutexLock lock(mutex);
        if (remaining == 0)
            return false;
        if (--remaining == 0) {
            lock.unlock();
            released.notifyAll();
            return true;
        }
        return false;
    }

    /** Block until the count reaches zero. */
    void
    wait()
    {
        MutexLock lock(mutex);
        while (remaining != 0)
            released.wait(lock);
    }

    uint32_t
    pending() const
    {
        MutexLock lock(mutex);
        return remaining;
    }

  private:
    mutable Mutex mutex{LockRank::latch, "latch"};
    CondVar released;
    uint32_t remaining GUARDED_BY(mutex);
};

} // namespace musuite

#endif // MUSUITE_BASE_THREADING_H

/**
 * @file
 * Thread utilities: named joining threads and a small countdown latch
 * used to synchronize fan-out completion (the "count down and merge"
 * step of the µSuite mid-tier response path).
 */

#ifndef MUSUITE_BASE_THREADING_H
#define MUSUITE_BASE_THREADING_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace musuite {

/** Name the calling thread (visible in /proc and debuggers). */
void setCurrentThreadName(const std::string &name);

/**
 * A joining thread with a name. Mirrors std::jthread join-on-destroy
 * semantics without the stop-token machinery we do not need.
 */
class ScopedThread
{
  public:
    ScopedThread() = default;
    ScopedThread(std::string name, std::function<void()> body);
    ~ScopedThread() { join(); }

    ScopedThread(ScopedThread &&) = default;
    ScopedThread &operator=(ScopedThread &&other);

    ScopedThread(const ScopedThread &) = delete;
    ScopedThread &operator=(const ScopedThread &) = delete;

    void join();
    bool joinable() const { return thread.joinable(); }

  private:
    std::thread thread;
};

/**
 * Countdown latch: constructed with the fan-out width, counted down by
 * leaf response handlers, waited on by whoever merges. The last
 * countDown() wakes waiters.
 */
class CountdownLatch
{
  public:
    explicit CountdownLatch(uint32_t count) : remaining(count) {}

    /** Decrement; returns true iff this call released the latch. */
    bool
    countDown()
    {
        std::unique_lock<std::mutex> lock(mutex);
        if (remaining == 0)
            return false;
        if (--remaining == 0) {
            lock.unlock();
            released.notify_all();
            return true;
        }
        return false;
    }

    /** Block until the count reaches zero. */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        released.wait(lock, [&] { return remaining == 0; });
    }

    uint32_t
    pending() const
    {
        std::unique_lock<std::mutex> lock(mutex);
        return remaining;
    }

  private:
    mutable std::mutex mutex;
    std::condition_variable released;
    uint32_t remaining;
};

} // namespace musuite

#endif // MUSUITE_BASE_THREADING_H

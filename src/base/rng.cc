/**
 * @file
 * Implementation of xoshiro256** and the layered distributions.
 */

#include "base/rng.h"

#include <cmath>

#include "base/logging.h"

namespace musuite {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : state)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state[1] * 5, 7) * 9;
    const uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    MUSUITE_CHECK(bound > 0) << "nextBounded(0)";
    // Lemire's multiply-shift rejection method.
    uint64_t x = next();
    __uint128_t m = __uint128_t(x) * __uint128_t(bound);
    uint64_t l = uint64_t(m);
    if (l < bound) {
        uint64_t threshold = -bound % bound;
        while (l < threshold) {
            x = next();
            m = __uint128_t(x) * __uint128_t(bound);
            l = uint64_t(m);
        }
    }
    return uint64_t(m >> 64);
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    MUSUITE_CHECK(lo <= hi) << "nextRange(" << lo << ", " << hi << ")";
    return lo + int64_t(nextBounded(uint64_t(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (hasSpare) {
        hasSpare = false;
        return spareGaussian;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-300);
    u2 = nextDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spareGaussian = mag * std::sin(2.0 * M_PI * u2);
    hasSpare = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::nextExponential(double rate)
{
    MUSUITE_CHECK(rate > 0) << "nextExponential rate must be positive";
    double u;
    do {
        u = nextDouble();
    } while (u <= 1e-300);
    return -std::log(u) / rate;
}

uint64_t
Rng::nextPoisson(double mean)
{
    MUSUITE_CHECK(mean >= 0) << "nextPoisson mean must be non-negative";
    if (mean == 0)
        return 0;
    if (mean < 30.0) {
        // Knuth's product-of-uniforms method.
        double limit = std::exp(-mean);
        double product = nextDouble();
        uint64_t count = 0;
        while (product > limit) {
            product *= nextDouble();
            ++count;
        }
        return count;
    }
    // Normal approximation for large means; adequate for data-set
    // shaping (never used for latency-critical sampling).
    double v = nextGaussian(mean, std::sqrt(mean));
    return v <= 0 ? 0 : uint64_t(v + 0.5);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xA02BDBF7BB3C0A7ull);
}

ZipfSampler::ZipfSampler(uint64_t n, double exponent)
    : n(n), exponent(exponent)
{
    MUSUITE_CHECK(n > 0) << "Zipf over empty domain";
    MUSUITE_CHECK(exponent > 0) << "Zipf exponent must be positive";
    hIntegralX1 = hIntegral(1.5) - 1.0;
    hIntegralN = hIntegral(double(n) + 0.5);
    s = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
}

double
ZipfSampler::h(double x) const
{
    return std::exp(-exponent * std::log(x));
}

double
ZipfSampler::hIntegral(double x) const
{
    const double log_x = std::log(x);
    // Stable evaluation of (x^(1-e) - 1) / (1 - e) that degrades
    // gracefully to log(x) as e -> 1.
    const double t = (1.0 - exponent) * log_x;
    double helper;
    if (std::fabs(t) > 1e-8)
        helper = std::expm1(t) / t;
    else
        helper = 1.0 + t * 0.5 * (1.0 + t / 3.0 * (1.0 + t * 0.25));
    return log_x * helper;
}

double
ZipfSampler::hIntegralInverse(double x) const
{
    double t = x * (1.0 - exponent);
    if (t < -1.0)
        t = -1.0; // Guard against numerical round-off below -1.
    double log_result;
    if (std::fabs(t) > 1e-8)
        log_result = std::log1p(t) / (1.0 - exponent);
    else
        log_result = x / (1.0 + t * 0.5 * (1.0 + t / 1.5 * (1.0 + t * 0.25)));
    return std::exp(log_result);
}

uint64_t
ZipfSampler::sample(Rng &rng) const
{
    while (true) {
        const double u =
            hIntegralN + rng.nextDouble() * (hIntegralX1 - hIntegralN);
        const double x = hIntegralInverse(u);
        uint64_t k = uint64_t(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > n)
            k = n;
        if (double(k) - x <= s || u >= hIntegral(double(k) + 0.5) -
                                           h(double(k))) {
            return k;
        }
    }
}

AliasSampler::AliasSampler(const std::vector<double> &weights)
    : prob(weights.size()), alias(weights.size())
{
    MUSUITE_CHECK(!weights.empty()) << "alias table over empty domain";
    double total = 0;
    for (double w : weights) {
        MUSUITE_CHECK(w >= 0) << "negative weight";
        total += w;
    }
    MUSUITE_CHECK(total > 0) << "all-zero weights";

    const size_t count = weights.size();
    std::vector<double> scaled(count);
    for (size_t i = 0; i < count; ++i)
        scaled[i] = weights[i] * double(count) / total;

    std::vector<uint32_t> small, large;
    small.reserve(count);
    large.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        (scaled[i] < 1.0 ? small : large).push_back(uint32_t(i));
    }

    while (!small.empty() && !large.empty()) {
        uint32_t less = small.back();
        small.pop_back();
        uint32_t more = large.back();
        prob[less] = scaled[less];
        alias[less] = more;
        scaled[more] = (scaled[more] + scaled[less]) - 1.0;
        if (scaled[more] < 1.0) {
            large.pop_back();
            small.push_back(more);
        }
    }
    for (uint32_t i : large)
        prob[i] = 1.0;
    for (uint32_t i : small)
        prob[i] = 1.0; // Numerical leftovers round to certainty.
}

uint64_t
AliasSampler::sample(Rng &rng) const
{
    const uint64_t column = rng.nextBounded(prob.size());
    return rng.nextDouble() < prob[column] ? column : alias[column];
}

} // namespace musuite

/**
 * @file
 * Implementation of the musuite logging sink.
 */

#include "base/logging.h"

#include <atomic>
#include <cstdio>
#include <ctime>

#include "base/threading.h"

namespace musuite {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
Mutex g_sink_mutex{LockRank::logSink, "log.sink"};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO ";
      case LogLevel::Warn:  return "WARN ";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Fatal: return "FATAL";
    }
    return "?????";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const char *file, int line,
           const std::string &msg)
{
    if (level < logLevel() && level != LogLevel::Fatal)
        return;

    // Strip the directory part of the path for terser records.
    const char *base = file;
    for (const char *p = file; *p; ++p) {
        if (*p == '/')
            base = p + 1;
    }

    MutexLock guard(g_sink_mutex);
    std::fprintf(stderr, "[%s %s:%d] %s\n", levelName(level), base, line,
                 msg.c_str());
}

} // namespace musuite

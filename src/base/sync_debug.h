/**
 * @file
 * Runtime concurrency-correctness checks: lock ranks and thread roles.
 *
 * The static thread-safety annotations (base/thread_annotations.h)
 * prove that guarded data is touched with the right lock held; they
 * cannot prove the *order* locks are taken in, which is what deadlocks
 * are made of. This module adds the dynamic half, compiled in only
 * under `-DMUSUITE_DEBUG_SYNC=1` (CMake option MUSUITE_DEBUG_SYNC):
 *
 *  - Every musuite::Mutex / TracedMutex carries a LockRank. A thread
 *    may only acquire a ranked mutex whose rank is strictly greater
 *    than every ranked mutex it already holds; violations abort with
 *    the held-lock list and the acquisition backtrace.
 *  - Independently, every observed acquisition edge (held lock ->
 *    newly acquired lock) goes into a process-global graph. Closing a
 *    cycle — the classic ABBA deadlock, including through unranked
 *    mutexes — aborts with both backtraces: the current acquisition
 *    and the one that established the reverse edge.
 *  - Threads can claim a role (poller / worker / completion / timer /
 *    loadgen); callback-running entry paths assert the role they were
 *    designed for, so a refactor that moves a handler onto the wrong
 *    thread fails loudly instead of racing quietly.
 *
 * In release builds (the default) everything here is an empty inline
 * and the annotated wrappers behave exactly like the raw std types.
 *
 * Rank values encode the global acquisition order, outermost first.
 * The per-module assignments are documented in DESIGN.md; keep the two
 * in sync when adding a rank.
 */

#ifndef MUSUITE_BASE_SYNC_DEBUG_H
#define MUSUITE_BASE_SYNC_DEBUG_H

#include <cstddef>
#include <cstdint>
#include <initializer_list>

namespace musuite {

/**
 * Lock classes in acquisition order: a thread holding a lock of rank r
 * may only acquire locks of rank > r (unranked locks are exempt from
 * the order check but still feed the cycle detector). Gaps leave room
 * for new layers.
 */
enum class LockRank : int {
    unranked = 0,        //!< No ordering contract (tests, ad-hoc locks).
    loadgen = 10,        //!< Load-generator completion state.
    harness = 15,        //!< Experiment-harness shared RNG.
    graphNode = 18,      //!< Graph-node queue model (services/graph)
                         //!< — taken before fanout: a node admits
                         //!< under its own lock, then fans out.
    fanout = 20,         //!< Fan-out merge state (services/common).
    call = 30,           //!< Per-call retry/hedge state (rpc/channel).
    overload = 32,       //!< Breaker / retry-throttle state (rpc/overload)
                         //!< — taken inside the attempt path, never
                         //!< while another overload lock is held.
    ejection = 33,       //!< Outlier-ejection policy state (rpc/health)
                         //!< — held while reading peer trackers, so it
                         //!< ranks below peerHealth.
    peerHealth = 34,     //!< Per-peer health tracker (rpc/health).
    faultInjector = 35,  //!< Fault-injection RNG (rpc/fault).
    admission = 37,      //!< Server admission controller (rpc/overload).
    clientConn = 40,     //!< Client connection + pending table.
    serverConns = 45,    //!< Server per-shard connection table.
    queue = 50,          //!< Task queues and rendezvous cells.
    timer = 60,          //!< Shared timer heap (base/clock RealClock).
    kvShard = 65,        //!< mucache shard (kv/mucache).
    frameOut = 70,       //!< Framed-connection outbound buffer.
    wirePool = 72,       //!< Wire-buffer recycling pool (serde/wire) —
                         //!< taken inside the frame flush path.
    osTraceRegistry = 74,//!< ostrace thread registry.
    osTraceLocal = 76,   //!< ostrace per-thread histograms.
    counters = 80,       //!< Counter registry (stats/counters).
    latch = 85,          //!< Countdown latches (base/threading).
    logSink = 90,        //!< Logging sink (base/logging) — leaf: log
                         //!< statements run under arbitrary locks.
};

/** Human-readable rank name for diagnostics. */
const char *lockRankName(LockRank rank);

/**
 * The thread roles of the µSuite threading model (paper Fig. 8).
 * `unknown` (the default for unclaimed threads — main, tests) passes
 * every role assertion, because tests legitimately drive poller-path
 * code inline.
 */
enum class ThreadRole : uint8_t {
    unknown = 0,
    poller,     //!< Server network/request-reception thread.
    worker,     //!< Server RPC-handler thread.
    completion, //!< Client leaf-response completion thread.
    timer,      //!< Shared timer thread (base/clock RealClock).
    loadgen,    //!< Load-generator issuing thread.
};

const char *threadRoleName(ThreadRole role);

/** Claim a role for the calling thread (cheap thread-local store). */
void setCurrentThreadRole(ThreadRole role);

/** The calling thread's claimed role (unknown if never set). */
ThreadRole currentThreadRole();

namespace syncdbg {

#if defined(MUSUITE_DEBUG_SYNC) && MUSUITE_DEBUG_SYNC

/**
 * Validate that acquiring `mutex` now respects the rank order and
 * closes no cycle in the acquisition graph. Aborts (after printing the
 * held-lock list and backtraces) on violation. Call before blocking on
 * the underlying lock so a real deadlock is reported, not entered.
 */
void checkAcquire(const void *mutex, LockRank rank, const char *name);

/** Push `mutex` onto the calling thread's held-lock stack. */
void recordAcquired(const void *mutex, LockRank rank, const char *name);

/** Remove `mutex` from the calling thread's held-lock stack. */
void recordReleased(const void *mutex);

/** Abort unless the calling thread's role is `expected` or unknown. */
void assertRole(ThreadRole expected, const char *where);

/** Abort unless the role is unknown or one of `allowed`. */
void assertRoleOneOf(std::initializer_list<ThreadRole> allowed,
                     const char *where);

/** Number of locks the calling thread currently holds (tests). */
size_t heldLockCount();

#else // !MUSUITE_DEBUG_SYNC — all checks compile to nothing.

inline void checkAcquire(const void *, LockRank, const char *) {}
inline void recordAcquired(const void *, LockRank, const char *) {}
inline void recordReleased(const void *) {}
inline void assertRole(ThreadRole, const char *) {}
inline void
assertRoleOneOf(std::initializer_list<ThreadRole>, const char *)
{}
inline size_t heldLockCount() { return 0; }

#endif // MUSUITE_DEBUG_SYNC

} // namespace syncdbg

// --------------------------------------------------------------------
// Thread-role assertions for callback-running entry paths. No-ops in
// release builds; in MUSUITE_DEBUG_SYNC builds they abort when a
// claimed thread of the wrong role reaches the path.
// --------------------------------------------------------------------

inline void
assertOnPollerThread()
{
    syncdbg::assertRole(ThreadRole::poller, "poller-only path");
}

inline void
assertOnWorkerThread()
{
    syncdbg::assertRole(ThreadRole::worker, "worker-only path");
}

inline void
assertOnCompletionThread()
{
    syncdbg::assertRole(ThreadRole::completion, "completion-only path");
}

inline void
assertOnTimerThread()
{
    syncdbg::assertRole(ThreadRole::timer, "timer-only path");
}

/** Frame reads happen on a server poller or a client completion
 *  thread; both own a Poller. */
inline void
assertOnFrameReaderThread()
{
    syncdbg::assertRoleOneOf(
        {ThreadRole::poller, ThreadRole::completion},
        "frame-reader path");
}

} // namespace musuite

#endif // MUSUITE_BASE_SYNC_DEBUG_H

/**
 * @file
 * Clang thread-safety-analysis annotation macros.
 *
 * These expand to Clang's capability attributes under
 * `clang++ -Wthread-safety` and to nothing everywhere else (GCC builds
 * them out entirely). They let the concurrent modules state their
 * locking contracts in the type system:
 *
 *   - GUARDED_BY(m) on a member: only touch it with m held.
 *   - REQUIRES(m) on a function: caller must hold m.
 *   - ACQUIRE()/RELEASE()/TRY_ACQUIRE() on lock-shaped methods.
 *   - CAPABILITY/SCOPED_CAPABILITY on mutex and RAII-guard types.
 *
 * The annotated primitives live in base/threading.h (Mutex, MutexLock,
 * CondVar); `tools/check.sh` runs the whole tree through
 * `clang++ -Werror=thread-safety` when a clang is available.
 *
 * The names follow the Clang documentation's canonical spelling; each
 * is #ifndef-guarded so a TU that also includes another project's copy
 * of the same macros does not break.
 */

#ifndef MUSUITE_BASE_THREAD_ANNOTATIONS_H
#define MUSUITE_BASE_THREAD_ANNOTATIONS_H

#if defined(__clang__) && !defined(MUSUITE_NO_THREAD_SAFETY_ANALYSIS)
#define MUSUITE_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MUSUITE_THREAD_ANNOTATION__(x) // no-op outside clang
#endif

/** Marks a class as a lockable capability ("mutex", "role", ...). */
#ifndef CAPABILITY
#define CAPABILITY(x) MUSUITE_THREAD_ANNOTATION__(capability(x))
#endif

/** Marks an RAII class whose lifetime holds a capability. */
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY MUSUITE_THREAD_ANNOTATION__(scoped_lockable)
#endif

/** Data member readable/writable only with the capability held. */
#ifndef GUARDED_BY
#define GUARDED_BY(x) MUSUITE_THREAD_ANNOTATION__(guarded_by(x))
#endif

/** Pointee (not the pointer) guarded by the capability. */
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) MUSUITE_THREAD_ANNOTATION__(pt_guarded_by(x))
#endif

/** Static lock-ordering hints checked by the analysis. */
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
    MUSUITE_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
    MUSUITE_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#endif

/** Function requires the capability held on entry (and exit). */
#ifndef REQUIRES
#define REQUIRES(...) \
    MUSUITE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#endif

/** Function acquires the capability and holds it past return. */
#ifndef ACQUIRE
#define ACQUIRE(...) \
    MUSUITE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#endif

/** Function releases a capability the caller held. */
#ifndef RELEASE
#define RELEASE(...) \
    MUSUITE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#endif

/** Function acquires the capability iff it returns `b`. */
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
    MUSUITE_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#endif

/** Function must be called with the capability NOT held. */
#ifndef EXCLUDES
#define EXCLUDES(...) \
    MUSUITE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#endif

/** Runtime assertion that the capability is held. */
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) \
    MUSUITE_THREAD_ANNOTATION__(assert_capability(x))
#endif

/** Function returns a reference to the named capability. */
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) MUSUITE_THREAD_ANNOTATION__(lock_returned(x))
#endif

/** Opt a function out of the analysis (lock-juggling internals). */
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
    MUSUITE_THREAD_ANNOTATION__(no_thread_safety_analysis)
#endif

#endif // MUSUITE_BASE_THREAD_ANNOTATIONS_H

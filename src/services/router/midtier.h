/**
 * @file
 * Router mid-tier microservice (paper §III-B, Fig. 5).
 *
 * Stages: (1) parse the client's get/set, (2) route computation —
 * SpookyHash the key to pick the replication pool of leaves, (3)
 * internal client code forwards the request: sets fan out to every
 * replica in the pool (replication both spreads load and provides
 * fault tolerance); gets go to one randomly chosen replica, failing
 * over to the next replica if that leaf is unreachable.
 */

#ifndef MUSUITE_SERVICES_ROUTER_MIDTIER_H
#define MUSUITE_SERVICES_ROUTER_MIDTIER_H

#include <atomic>
#include <memory>
#include <vector>

#include "rpc/channel.h"
#include "rpc/server.h"
#include "services/common/fanout.h"

namespace musuite {
namespace router {

struct MidTierOptions
{
    uint32_t replicas = 3; //!< Replication-pool size (paper: 3).
    uint64_t seed = 23;    //!< Replica-choice randomness.
    /**
     * Resilience policy. Sets fan out with fanout.leg options and
     * complete early once quorumFraction of the pool stored the value
     * (flagged degraded if any replica missed it); gets apply
     * fanout.leg to each sequential failover attempt.
     */
    FanoutPolicy fanout;
};

class MidTier
{
  public:
    MidTier(std::vector<std::shared_ptr<rpc::Channel>> leaves,
            MidTierOptions options = {});

    void registerWith(rpc::Server &server);

    /**
     * The replication pool for a key: replica i lives on leaf
     * (spooky(key) + i) mod N.
     */
    std::vector<uint32_t> replicaPool(std::string_view key) const;

    uint64_t opsRouted() const { return served; }
    /** Gets that needed replica failover (fault-tolerance metric). */
    uint64_t failovers() const { return failoverCount; }
    /** Sets acknowledged by only part of the replica pool. */
    uint64_t degradedResponses() const { return degraded; }

  private:
    void handle(rpc::ServerCallPtr call);
    void routeSet(rpc::ServerCallPtr call, const std::string &body,
                  const std::vector<uint32_t> &pool);
    /**
     * Try pool[attempt], fail over on error. `failures` accumulates
     * each attempt's failure status so pool exhaustion can report the
     * dominant one (a shedding replica's retry-after survives the
     * walk instead of being flattened to Unavailable).
     */
    void routeGet(rpc::ServerCallPtr call, std::string body,
                  std::vector<uint32_t> pool, size_t attempt,
                  std::vector<LeafResult> failures);

    std::vector<std::shared_ptr<rpc::Channel>> leaves;
    MidTierOptions options;
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> failoverCount{0};
    std::atomic<uint64_t> degraded{0};
    std::atomic<uint64_t> replicaSalt{0};
};

} // namespace router
} // namespace musuite

#endif // MUSUITE_SERVICES_ROUTER_MIDTIER_H

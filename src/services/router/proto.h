/**
 * @file
 * Router wire messages and method ids (paper §III-B).
 *
 * Clients speak plain get/set; Router is a drop-in proxy between them
 * and the memcached-like leaves, hiding routing and replication.
 */

#ifndef MUSUITE_SERVICES_ROUTER_PROTO_H
#define MUSUITE_SERVICES_ROUTER_PROTO_H

#include <cstdint>
#include <string>

#include "serde/wire.h"

namespace musuite {
namespace router {

enum Method : uint32_t {
    kRoute = 1,   //!< Mid-tier entry point (get or set).
    kLeafOp = 2,  //!< Leaf key-value operation.
};

enum class Op : uint8_t {
    Get = 0,
    Set = 1,
};

/** Client request to the mid-tier, and mid-tier request to a leaf. */
struct KvRequest
{
    Op op = Op::Get;
    std::string key;
    std::string value; //!< Sets only.

    void
    encode(WireWriter &out) const
    {
        out.putVarint(uint64_t(op));
        out.putBytes(key);
        out.putBytes(value);
    }

    bool
    decode(WireReader &in)
    {
        const uint64_t raw_op = in.getVarint();
        if (raw_op > uint64_t(Op::Set))
            return false;
        op = Op(raw_op);
        key = std::string(in.getBytes());
        value = std::string(in.getBytes());
        return in.ok();
    }
};

/** Leaf and mid-tier response. */
struct KvReply
{
    bool found = false; //!< Gets: key present. Sets: stored.
    std::string value;  //!< Gets only.
    /** Sets: true if fewer than all replicas acknowledged. */
    bool degraded = false;

    void
    encode(WireWriter &out) const
    {
        out.putBool(found);
        out.putBytes(value);
        out.putBool(degraded);
    }

    bool
    decode(WireReader &in)
    {
        found = in.getBool();
        value = std::string(in.getBytes());
        // Trailing optional field: absent in pre-resilience payloads.
        degraded = in.remaining() > 0 ? in.getBool() : false;
        return in.ok();
    }
};

} // namespace router
} // namespace musuite

#endif // MUSUITE_SERVICES_ROUTER_PROTO_H

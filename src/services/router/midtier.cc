/**
 * @file
 * Implementation of the Router mid-tier.
 */

#include "services/router/midtier.h"

#include "base/logging.h"
#include "hash/spooky.h"
#include "services/common/fanout.h"
#include "services/router/proto.h"

namespace musuite {
namespace router {

MidTier::MidTier(std::vector<std::shared_ptr<rpc::Channel>> leaves_in,
                 MidTierOptions options_in)
    : leaves(std::move(leaves_in)), options(options_in)
{
    MUSUITE_CHECK(!leaves.empty()) << "router needs leaves";
    options.replicas =
        std::min<uint32_t>(options.replicas, uint32_t(leaves.size()));
    MUSUITE_CHECK(options.replicas >= 1) << "need >= 1 replica";
    replicaSalt.store(options.seed);
}

void
MidTier::registerWith(rpc::Server &server)
{
    server.registerHandler(kRoute, [this](rpc::ServerCallPtr call) {
        handle(std::move(call));
    });
}

std::vector<uint32_t>
MidTier::replicaPool(std::string_view key) const
{
    // Stage 2: route computation. SpookyHash distributes keys
    // uniformly across destination leaves; consecutive leaves form
    // the replication pool.
    const uint32_t primary =
        shardForKey(key, uint32_t(leaves.size()));
    std::vector<uint32_t> pool(options.replicas);
    for (uint32_t i = 0; i < options.replicas; ++i)
        pool[i] = (primary + i) % uint32_t(leaves.size());
    return pool;
}

void
MidTier::handle(rpc::ServerCallPtr call)
{
    if (failFastIfExpired(call))
        return;
    KvRequest request;
    if (!decodeMessage(call->body(), request) || request.key.empty()) {
        call->respond(StatusCode::InvalidArgument, "bad route request");
        return;
    }
    served.fetch_add(1, std::memory_order_relaxed);

    const std::vector<uint32_t> pool = replicaPool(request.key);
    if (request.op == Op::Set) {
        routeSet(call, call->body(), pool);
    } else {
        // Random replica choice balances read load across the pool.
        const uint64_t salt =
            replicaSalt.fetch_add(0x9E3779B97F4A7C15ull,
                                  std::memory_order_relaxed);
        std::vector<uint32_t> rotated(pool.size());
        const size_t start = size_t(salt % pool.size());
        for (size_t i = 0; i < pool.size(); ++i)
            rotated[i] = pool[(start + i) % pool.size()];
        routeGet(call, call->body(), std::move(rotated), 0, {});
    }
}

void
MidTier::routeSet(rpc::ServerCallPtr call, const std::string &body,
                  const std::vector<uint32_t> &pool)
{
    // Sets go to every replica so the data survives leaf failures.
    std::vector<FanoutRequest> requests;
    requests.reserve(pool.size());
    for (uint32_t leaf : pool) {
        FanoutRequest request;
        request.channel = leaves[leaf].get();
        request.body = body; // Leaf understands the same KvRequest.
        request.tag = leaf;
        requests.push_back(std::move(request));
    }

    const FanoutOptions fanout_options = options.fanout.resolve(
        requests.size(), call->remainingBudgetNs());
    fanoutCall(kLeafOp, std::move(requests), fanout_options,
               [this, call](FanoutOutcome outcome) {
                   // The set succeeds if any replica stored it; a
                   // fully failed pool reports the dominant failure
                   // (a shedding replica's retry-after survives).
                   uint32_t stored = 0;
                   bool downstream_degraded = false;
                   for (const LeafResult &result : outcome.results) {
                       KvReply reply;
                       if (result.status.isOk() &&
                           decodeMessage(result.payload, reply) &&
                           reply.found) {
                           ++stored;
                           // A replica that is itself a mid-tier may
                           // have stored the value degraded; OR that
                           // through so the root sees it (multi-hop
                           // degraded-propagation fix).
                           downstream_degraded |= reply.degraded;
                       }
                   }
                   if (stored == 0) {
                       respondFailure(
                           call,
                           dominantFailure(
                               outcome.results,
                               "no replica stored the value"));
                       return;
                   }
                   KvReply reply;
                   reply.found = true;
                   reply.degraded =
                       downstream_degraded ||
                       stored < uint32_t(outcome.results.size());
                   if (reply.degraded)
                       degraded.fetch_add(1,
                                          std::memory_order_relaxed);
                   call->respondOk(encodeMessage(reply));
               });
}

void
MidTier::routeGet(rpc::ServerCallPtr call, std::string body,
                  std::vector<uint32_t> pool, size_t attempt,
                  std::vector<LeafResult> failures)
{
    if (attempt >= pool.size()) {
        respondFailure(call,
                       dominantFailure(failures,
                                       "all replicas unreachable"));
        return;
    }
    // A failover walk can outlive the caller's budget: stop promising
    // replicas time the root no longer has.
    if (attempt > 0 && failFastIfExpired(call))
        return;
    if (attempt > 0)
        failoverCount.fetch_add(1, std::memory_order_relaxed);

    rpc::Channel *channel = leaves[pool[attempt]].get();
    std::string body_copy = body;
    // Each failover attempt gets the per-leg resilience options
    // clamped to the budget *remaining now* — earlier attempts have
    // already spent part of it (budget-decrement fix).
    channel->call(
        kLeafOp, std::move(body_copy),
        options.fanout.legOptions(call->remainingBudgetNs()),
        [this, call, body = std::move(body), pool = std::move(pool),
         attempt, failures = std::move(failures)](
            const Status &status, std::string_view payload) mutable {
            if (status.isOk()) {
                // Preserve a downstream mid-tier's degraded flag: the
                // payload is relayed verbatim, so it already carries it.
                call->respondOk(payload);
                return;
            }
            // Replica down: fall over to the next one in the pool,
            // remembering why this one failed.
            failures.push_back(LeafResult{status, {}});
            routeGet(call, std::move(body), std::move(pool),
                     attempt + 1, std::move(failures));
        });
}

} // namespace router
} // namespace musuite

/**
 * @file
 * Implementation of the Router leaf.
 */

#include "services/router/leaf.h"

#include "services/router/proto.h"

namespace musuite {
namespace router {

Leaf::Leaf(CacheOptions options)
    : store(options)
{}

void
Leaf::registerWith(rpc::Server &server)
{
    server.registerHandler(kLeafOp, [this](rpc::ServerCallPtr call) {
        handle(std::move(call));
    });
}

void
Leaf::handle(rpc::ServerCallPtr call)
{
    KvRequest request;
    if (!decodeMessage(call->body(), request) || request.key.empty()) {
        call->respond(StatusCode::InvalidArgument, "bad kv request");
        return;
    }
    served.fetch_add(1, std::memory_order_relaxed);

    KvReply reply;
    if (request.op == Op::Get) {
        auto value = store.get(request.key);
        reply.found = value.has_value();
        if (value)
            reply.value = std::move(*value);
    } else {
        reply.found = store.set(request.key, request.value);
    }
    call->respondOk(encodeMessage(reply));
}

} // namespace router
} // namespace musuite

/**
 * @file
 * Router leaf microservice: the RPC wrapper around a mucache
 * (memcached-equivalent) store. Handles concurrent requests from many
 * mid-tier threads; rewrites murpc requests into local store calls
 * exactly as the paper's leaf rewrites gRPC queries into memcached
 * protocol.
 */

#ifndef MUSUITE_SERVICES_ROUTER_LEAF_H
#define MUSUITE_SERVICES_ROUTER_LEAF_H

#include "kv/mucache.h"
#include "rpc/server.h"

namespace musuite {
namespace router {

class Leaf
{
  public:
    explicit Leaf(CacheOptions options = {});

    void registerWith(rpc::Server &server);

    MuCache &cache() { return store; }
    uint64_t opsServed() const { return served; }

  private:
    void handle(rpc::ServerCallPtr call);

    MuCache store;
    std::atomic<uint64_t> served{0};
};

} // namespace router
} // namespace musuite

#endif // MUSUITE_SERVICES_ROUTER_LEAF_H

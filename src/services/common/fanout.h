/**
 * @file
 * Asynchronous fan-out/merge helper shared by every µSuite mid-tier.
 *
 * The mid-tier request path launches one RPC per leaf shard and
 * returns; leaf responses arrive on the client's completion threads,
 * which "count down and merge" (paper §IV): every response thread
 * stashes its payload and counts down, and only the completing one
 * does real work — running the merge functor and completing the
 * parent RPC.
 *
 * Resilience (the fan-out is where a single slow or dead leaf defines
 * the parent's tail):
 *
 *  - Per-leg call options (FanoutOptions::leg) give every leg a
 *    deadline, retry budget, and optional hedge, so a dead leaf turns
 *    into a fast per-leg error instead of a parent hang.
 *  - A quorum threshold completes the parent early with partial
 *    results once (a) that many legs have answered OK and (b) at
 *    least one leg has terminally failed — an observed failure is the
 *    signal that waiting for the rest is likely wasted. Stragglers
 *    are abandoned: their slots are reported as DEADLINE_EXCEEDED and
 *    the outcome is flagged degraded. While every leg is healthy the
 *    parent waits for all of them, so healthy traffic is never marked
 *    degraded. Late straggler responses are counted (fanout.late_leg)
 *    and dropped.
 *
 * THREADING CONTRACT: on_complete is invoked exactly once, on the
 * thread of whichever leg completes the fan-out — a completion
 * thread, the bound clock's timer-dispatch context, or *synchronously
 * on the caller's own thread* when every leg fails inline (e.g.
 * connect failure on every channel). Merge code must not hold locks
 * across fanoutCall() that on_complete also takes, and must not
 * assume completion-thread context.
 *
 * CLOCK SEAM: the fan-out itself never reads a clock — each leg's
 * deadline/retry/hedge timers run on that leg's channel clock, and
 * the inbound budget it clamps legs by is a relative duration, so a
 * fan-out runs unmodified under the simulated clock (every leg
 * channel must share one clock domain with the parent call).
 */

#ifndef MUSUITE_SERVICES_COMMON_FANOUT_H
#define MUSUITE_SERVICES_COMMON_FANOUT_H

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/threading.h"
#include "rpc/channel.h"
#include "rpc/health.h"
#include "rpc/server.h"
#include "stats/counters.h"

namespace musuite {

/** Outcome of one leaf RPC within a fan-out. */
struct LeafResult
{
    Status status;
    std::string payload;
};

/** One leg of a fan-out: which channel to call and with what body. */
struct FanoutRequest
{
    rpc::Channel *channel = nullptr;
    std::string body;
    /** Caller-meaningful tag (e.g. leaf index) carried to the merge. */
    uint32_t tag = 0;
};

/** Resilience knobs for one fan-out. Defaults reproduce the classic
 *  behaviour: plain calls, wait for every leg. */
struct FanoutOptions
{
    rpc::CallOptions leg; //!< Applied to every leg.
    /**
     * 0 = wait for all legs. Otherwise, once any leg has failed,
     * complete the parent as soon as this many legs have answered OK,
     * abandoning the rest.
     */
    uint32_t quorum = 0;
    /**
     * Optional outlier-ejection gate (rpc/health.h), consulted per
     * leg before the call is issued. A refused leg is skipped: it
     * completes instantly as an UNAVAILABLE failure without touching
     * its channel (so the breaker and health tracker never see the
     * skip), and counts under fanout.outlier_skipped. Not owned; the
     * policy must outlive the fan-out.
     */
    rpc::EjectionPolicy *ejection = nullptr;
};

/** What the merge receives. */
struct FanoutOutcome
{
    /**
     * One entry per request, in request order. Abandoned stragglers
     * carry DEADLINE_EXCEEDED.
     */
    std::vector<LeafResult> results;
    uint32_t okLegs = 0;
    /** True iff the parent completed without every leg OK — merged
     *  from partial results. */
    bool degraded = false;
};

/**
 * Mid-tier-level fan-out policy, resolved against the actual leg
 * count per request (services don't know their fan-out width until
 * the request path has run).
 */
struct FanoutPolicy
{
    rpc::CallOptions leg;
    /**
     * Fraction of legs whose OK answers complete the parent early
     * once any leg has failed (>= 1.0 means wait for all). At least
     * one leg is always required.
     */
    double quorumFraction = 1.0;
    /**
     * Optional shared outlier-ejection policy for this fan-out's peer
     * pool; copied into every resolved FanoutOptions. Configure its
     * maxEjectedFraction <= 1 - quorumFraction so ejection can never
     * starve the quorum (DESIGN.md "Gray failures & outlier
     * ejection").
     */
    std::shared_ptr<rpc::EjectionPolicy> ejection;

    FanoutOptions
    resolve(size_t legs) const
    {
        FanoutOptions options;
        options.leg = leg;
        options.ejection = ejection.get();
        if (quorumFraction < 1.0 && legs > 0) {
            options.quorum = std::max<uint32_t>(
                1, uint32_t(std::ceil(quorumFraction * double(legs))));
        }
        return options;
    }

    /** Clamp a call's deadlines to an inbound budget: a downstream
     *  attempt is never promised longer than the end-to-end caller
     *  will wait. 0 budget = no inbound deadline, no clamping. */
    static void
    clampToBudget(rpc::CallOptions &options, int64_t inbound_budget_ns)
    {
        if (inbound_budget_ns <= 0)
            return;
        auto clamp = [inbound_budget_ns](int64_t &deadline_ns) {
            if (deadline_ns == 0 || deadline_ns > inbound_budget_ns)
                deadline_ns = inbound_budget_ns;
        };
        clamp(options.deadlineNs);
        clamp(options.totalDeadlineNs);
    }

    /**
     * Deadline-propagating variant: clamp every leg's deadlines to the
     * budget the mid-tier's own caller has left (ServerCall::
     * remainingBudgetNs; 0 = no inbound deadline, no clamping). A leaf
     * is never given longer than the end-to-end caller will wait, so
     * work the client has abandoned is not re-queued downstream, and
     * legs with no deadline of their own inherit the inbound one.
     *
     * Pass `remainingBudgetNs()` read at the *call site*, not a value
     * captured at admission: the remaining budget shrinks by local
     * queueing + service time, and each hop of a deep DAG must forward
     * only what is actually left (the depth-3 re-promise bug).
     */
    FanoutOptions
    resolve(size_t legs, int64_t inbound_budget_ns) const
    {
        FanoutOptions options = resolve(legs);
        clampToBudget(options.leg, inbound_budget_ns);
        return options;
    }

    /**
     * Budget-clamped options for a *single* downstream call outside a
     * fanoutCall (e.g. the router's sequential failover walk). Same
     * clamp as resolve(legs, budget); mulint's deadline-taint rule
     * accepts either as evidence that a services call site propagates
     * its inbound deadline.
     */
    rpc::CallOptions
    legOptions(int64_t inbound_budget_ns) const
    {
        rpc::CallOptions options = leg;
        clampToBudget(options, inbound_budget_ns);
        return options;
    }
};

/**
 * Fail a call immediately when its inbound budget has already run out,
 * before any downstream RPC is issued. Returns true (and responds
 * DEADLINE_EXCEEDED) if the call was completed here. Every mid-tier
 * handler calls this first: forwarding an expired budget's 1ns
 * sentinel downstream just burns a full round of leaf work to produce
 * an answer the root stopped waiting for (the depth-3 in-queue-expiry
 * symptom).
 */
inline bool
failFastIfExpired(const rpc::ServerCallPtr &call)
{
    if (call->deadlineNanos() == 0 || call->remainingBudgetNs() > 1)
        return false;
    globalCounters().counter("fanout.expired_before_fanout").add();
    call->respond(StatusCode::DeadlineExceeded, "");
    return true;
}

/**
 * The status a mid-tier should report upstream when a fan-out (or
 * failover walk) produced no usable result. Shed responses dominate:
 * if any leg was RESOURCE_EXHAUSTED, return RESOURCE_EXHAUSTED
 * carrying the *maximum* retry-after hint seen, so the root's backoff
 * is paced by the most-loaded downstream instead of hammering it
 * (retry amplification). Otherwise deadline expiry dominates plain
 * unavailability.
 */
inline Status
dominantFailure(const std::vector<LeafResult> &results,
                const std::string &message)
{
    bool saw_exhausted = false;
    bool saw_deadline = false;
    int64_t max_retry_after = 0;
    for (const LeafResult &result : results) {
        if (result.status.isOk())
            continue;
        switch (result.status.code()) {
        case StatusCode::ResourceExhausted:
            saw_exhausted = true;
            max_retry_after = std::max(max_retry_after,
                                       result.status.retryAfterNs());
            break;
        case StatusCode::DeadlineExceeded:
            saw_deadline = true;
            break;
        default:
            break;
        }
    }
    if (saw_exhausted) {
        Status status(StatusCode::ResourceExhausted, message);
        status.setRetryAfterNs(max_retry_after);
        return status;
    }
    if (saw_deadline)
        return Status(StatusCode::DeadlineExceeded, message);
    return Status(StatusCode::Unavailable, message);
}

/** Complete a ServerCall with a failure Status, forwarding its
 *  retry-after hint into the response header's budget slot. */
inline void
respondFailure(const rpc::ServerCallPtr &call, const Status &status)
{
    call->respond(status.code(), "", status.retryAfterNs());
}

/**
 * Issue all requests asynchronously; invoke on_complete exactly once
 * (see the threading contract above) with one result per request in
 * request order.
 *
 * @param method Method id used for every leg.
 */
inline void
fanoutCall(uint32_t method, std::vector<FanoutRequest> requests,
           FanoutOptions options,
           std::function<void(FanoutOutcome)> on_complete)
{
    MUSUITE_CHECK(!requests.empty()) << "empty fan-out";

    struct SharedState
    {
        Mutex mutex{LockRank::fanout, "fanout"};
        std::vector<LeafResult> results GUARDED_BY(mutex);
        std::vector<bool> arrived GUARDED_BY(mutex);
        uint32_t completedLegs GUARDED_BY(mutex) = 0;
        uint32_t okLegs GUARDED_BY(mutex) = 0;
        bool done GUARDED_BY(mutex) = false;
        uint32_t legs;
        uint32_t quorum;
        std::function<void(FanoutOutcome)> merge;

        SharedState(size_t n, uint32_t quorum)
            : results(n), arrived(n, false), legs(uint32_t(n)),
              quorum(quorum)
        {}
    };
    const uint32_t quorum =
        options.quorum == 0
            ? 0
            : std::min<uint32_t>(options.quorum,
                                 uint32_t(requests.size()));
    auto state = std::make_shared<SharedState>(requests.size(), quorum);
    state->merge = std::move(on_complete);
    globalCounters().counter("fanout.calls").add();

    // Outlier ejection: consult the policy per leg before anything is
    // issued. A refused leg never touches its channel in-band — no
    // transport traffic, no breaker/throttle/health recording (skips
    // are not evidence about the peer, and counting them would
    // double-book the original failures that caused the ejection).
    // The leg is pre-marked as an instant UNAVAILABLE completion so
    // the quorum arithmetic below sees a terminal failure
    // immediately: with a quorum set, the parent completes as soon as
    // the healthy legs answer instead of waiting out the ejected
    // peer's deadline. Probe legs are pre-marked the same way for the
    // merge, then fired out-of-band below: their outcomes feed the
    // peer's health tracker through the normal channel path, but a
    // zombie probe burning its deadline never drags this fan-out.
    std::vector<bool> skip;
    std::vector<size_t> probes;
    uint32_t skipped = 0;
    if (options.ejection != nullptr) {
        skip.assign(requests.size(), false);
        for (size_t i = 0; i < requests.size(); ++i) {
            switch (options.ejection->admitLeg(requests[i].channel)) {
            case rpc::EjectionPolicy::LegDecision::Admit:
                break;
            case rpc::EjectionPolicy::LegDecision::Probe:
                probes.push_back(i);
                [[fallthrough]];
            case rpc::EjectionPolicy::LegDecision::Skip:
                skip[i] = true;
                skipped++;
                break;
            }
        }
        if (skipped > 0) {
            globalCounters()
                .counter("fanout.outlier_skipped")
                .add(skipped);
            MutexLock guard(state->mutex);
            for (size_t i = 0; i < requests.size(); ++i) {
                if (!skip[i])
                    continue;
                state->results[i].status = Status(
                    StatusCode::Unavailable, "peer ejected as outlier");
                state->arrived[i] = true;
                state->completedLegs++;
            }
        }
        for (size_t i : probes) {
            // mulint: allow(deadline-taint): probes reuse the caller-resolved leg options; the budget was applied in the mid-tier's resolve() call
            requests[i].channel->call(
                method, std::move(requests[i].body), options.leg,
                [](const Status &, std::string_view) {
                    // Fire-and-forget: the channel already recorded
                    // the outcome into the peer's health tracker.
                });
        }
        if (skipped == requests.size()) {
            // Degenerate: every leg ejected (only reachable with
            // maxEjectedFraction == 1). Nothing will ever call back,
            // so complete the all-failed outcome here.
            FanoutOutcome outcome;
            {
                MutexLock guard(state->mutex);
                state->done = true;
                outcome.results = std::move(state->results);
            }
            outcome.okLegs = 0;
            outcome.degraded = true;
            globalCounters().counter("fanout.degraded").add();
            state->merge(std::move(outcome));
            return;
        }
    }

    // Cork every distinct channel for the duration of the issue loop:
    // all legs sharing a transport connection leave in one
    // scatter-gather syscall when the batch closes. Safe even when a
    // leg completes inline — the merge runs after uncork at the
    // latest, and responses cannot precede the flushed requests.
    rpc::ScopedWriteBatch batch;
    for (const FanoutRequest &request : requests)
        batch.add(request.channel);

    for (size_t i = 0; i < requests.size(); ++i) {
        FanoutRequest &request = requests[i];
        if (!skip.empty() && skip[i])
            continue; // Ejected: pre-completed above, channel untouched.
        // mulint: allow(deadline-taint): legs carry the caller-resolved FanoutOptions; the budget was applied in the mid-tier's resolve()/legOptions() call
        request.channel->call(
            method, std::move(request.body), options.leg,
            [state, i](const Status &status, std::string_view payload) {
                FanoutOutcome outcome;
                bool fire = false;
                {
                    MutexLock guard(state->mutex);
                    if (state->done) {
                        // Straggler beyond the quorum: the parent has
                        // already answered. Never touch results here —
                        // they have been moved out.
                        globalCounters()
                            .counter("fanout.late_leg")
                            .add();
                        return;
                    }
                    state->results[i].status = status;
                    state->results[i].payload.assign(payload.data(),
                                                     payload.size());
                    state->arrived[i] = true;
                    state->completedLegs++;
                    if (status.isOk())
                        state->okLegs++;

                    // Early completion needs both quorum OKs and an
                    // observed terminal failure (completed > ok);
                    // all-healthy fan-outs wait for every leg.
                    fire = state->completedLegs == state->legs ||
                           (state->quorum != 0 &&
                            state->okLegs >= state->quorum &&
                            state->completedLegs > state->okLegs);
                    if (fire) {
                        state->done = true;
                        outcome.results = std::move(state->results);
                        outcome.okLegs = state->okLegs;
                        for (size_t leg = 0; leg < outcome.results.size();
                             ++leg) {
                            if (state->arrived[leg])
                                continue;
                            outcome.results[leg].status = Status(
                                StatusCode::DeadlineExceeded,
                                "straggler abandoned at quorum");
                            globalCounters()
                                .counter("fanout.abandoned_leg")
                                .add();
                        }
                        outcome.degraded =
                            outcome.okLegs < outcome.results.size();
                    }
                }
                if (fire) {
                    if (outcome.degraded) {
                        globalCounters()
                            .counter("fanout.degraded")
                            .add();
                    }
                    state->merge(std::move(outcome));
                }
            });
    }
}

/**
 * Classic all-legs fan-out: wait for every leg, plain calls. Kept for
 * callers that need no resilience policy.
 */
inline void
fanoutCall(uint32_t method, std::vector<FanoutRequest> requests,
           std::function<void(std::vector<LeafResult>)> on_complete)
{
    // mulint: allow(deadline-taint): compatibility shim with no inbound call context; FanoutOptions{} means no per-leg deadline to derive
    fanoutCall(method, std::move(requests), FanoutOptions{},
               [on_complete = std::move(on_complete)](
                   FanoutOutcome outcome) {
                   on_complete(std::move(outcome.results));
               });
}

} // namespace musuite

#endif // MUSUITE_SERVICES_COMMON_FANOUT_H

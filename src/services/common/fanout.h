/**
 * @file
 * Asynchronous fan-out/merge helper shared by every µSuite mid-tier.
 *
 * The mid-tier request path launches one RPC per leaf shard and
 * returns; leaf responses arrive on the client's completion threads,
 * which "count down and merge" (paper §IV): every response thread
 * stashes its payload and decrements a counter, and only the last one
 * does real work — running the merge functor and completing the
 * parent RPC.
 */

#ifndef MUSUITE_SERVICES_COMMON_FANOUT_H
#define MUSUITE_SERVICES_COMMON_FANOUT_H

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/logging.h"
#include "rpc/channel.h"

namespace musuite {

/** Outcome of one leaf RPC within a fan-out. */
struct LeafResult
{
    Status status;
    std::string payload;
};

/** One leg of a fan-out: which channel to call and with what body. */
struct FanoutRequest
{
    rpc::Channel *channel = nullptr;
    std::string body;
    /** Caller-meaningful tag (e.g. leaf index) carried to the merge. */
    uint32_t tag = 0;
};

/**
 * Issue all requests asynchronously; invoke on_complete exactly once
 * (on the thread of the last-arriving response) with results in
 * request order.
 *
 * @param method Method id used for every leg.
 * @param on_complete Receives one LeafResult per request.
 */
inline void
fanoutCall(uint32_t method, std::vector<FanoutRequest> requests,
           std::function<void(std::vector<LeafResult>)> on_complete)
{
    MUSUITE_CHECK(!requests.empty()) << "empty fan-out";

    struct SharedState
    {
        std::vector<LeafResult> results;
        std::atomic<uint32_t> remaining;
        std::function<void(std::vector<LeafResult>)> done;

        explicit SharedState(size_t n) : results(n), remaining(uint32_t(n))
        {}
    };
    auto state = std::make_shared<SharedState>(requests.size());
    state->done = std::move(on_complete);

    for (size_t i = 0; i < requests.size(); ++i) {
        FanoutRequest &request = requests[i];
        request.channel->call(
            method, std::move(request.body),
            [state, i](const Status &status, std::string_view payload) {
                state->results[i].status = status;
                state->results[i].payload.assign(payload.data(),
                                                 payload.size());
                if (state->remaining.fetch_sub(
                        1, std::memory_order_acq_rel) == 1) {
                    state->done(std::move(state->results));
                }
            });
    }
}

} // namespace musuite

#endif // MUSUITE_SERVICES_COMMON_FANOUT_H

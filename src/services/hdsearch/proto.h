/**
 * @file
 * HDSearch wire messages and method ids.
 *
 * Client → mid-tier: a query feature vector and k. Mid-tier → leaf: the
 * query vector plus the LSH candidate point ids local to that leaf.
 * Leaf → mid-tier: a distance-sorted candidate list. Mid-tier → client:
 * the global top-k with global point ids (leaf, local id).
 */

#ifndef MUSUITE_SERVICES_HDSEARCH_PROTO_H
#define MUSUITE_SERVICES_HDSEARCH_PROTO_H

#include <cstdint>
#include <vector>

#include "serde/wire.h"

namespace musuite {
namespace hdsearch {

/** Method ids on the mid-tier and leaf servers. */
enum Method : uint32_t {
    kNearestNeighbors = 1, //!< Mid-tier entry point.
    kLeafDistance = 2,     //!< Leaf candidate refinement.
};

/** Compose a global point id from leaf shard and local index. */
inline uint64_t
globalPointId(uint32_t leaf, uint32_t local)
{
    return (uint64_t(leaf) << 32) | local;
}

struct NNQuery
{
    std::vector<float> features;
    uint32_t k = 1;

    void
    encode(WireWriter &out) const
    {
        out.putFloatVector(features);
        out.putVarint(k);
    }

    bool
    decode(WireReader &in)
    {
        features = in.getFloatVector();
        k = uint32_t(in.getVarint());
        return in.ok();
    }
};

struct NNResponse
{
    std::vector<uint64_t> pointIds; //!< Global ids, nearest first.
    std::vector<float> distances;   //!< Squared L2, aligned with ids.
    /** True if some leaf shards did not contribute (partial merge). */
    bool degraded = false;

    void
    encode(WireWriter &out) const
    {
        out.putVarintVector(pointIds);
        out.putFloatVector(distances);
        out.putBool(degraded);
    }

    bool
    decode(WireReader &in)
    {
        pointIds = in.getVarintVector();
        distances = in.getFloatVector();
        // Trailing optional field: absent in pre-resilience payloads.
        degraded = in.remaining() > 0 ? in.getBool() : false;
        return in.ok() && pointIds.size() == distances.size();
    }
};

struct LeafNNRequest
{
    std::vector<float> features;
    std::vector<uint32_t> candidates; //!< Local point ids to score.
    uint32_t k = 1;

    void
    encode(WireWriter &out) const
    {
        out.putFloatVector(features);
        out.putU32Vector(candidates);
        out.putVarint(k);
    }

    bool
    decode(WireReader &in)
    {
        features = in.getFloatVector();
        candidates = in.getU32Vector();
        k = uint32_t(in.getVarint());
        return in.ok();
    }
};

struct LeafNNResponse
{
    std::vector<uint32_t> pointIds; //!< Local ids, nearest first.
    std::vector<float> distances;
    /** True when the responder is itself a mid-tier that merged a
     *  partial result (multi-hop deployments); leaves leave it false. */
    bool degraded = false;

    void
    encode(WireWriter &out) const
    {
        out.putU32Vector(pointIds);
        out.putFloatVector(distances);
        out.putBool(degraded);
    }

    bool
    decode(WireReader &in)
    {
        pointIds = in.getU32Vector();
        distances = in.getFloatVector();
        // Trailing optional field: absent in pre-resilience payloads.
        degraded = in.remaining() > 0 ? in.getBool() : false;
        return in.ok() && pointIds.size() == distances.size();
    }
};

} // namespace hdsearch
} // namespace musuite

#endif // MUSUITE_SERVICES_HDSEARCH_PROTO_H

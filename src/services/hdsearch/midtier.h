/**
 * @file
 * HDSearch mid-tier microservice (paper §III-A, Fig. 3).
 *
 * Request path: (1) look the query vector up in the in-memory LSH
 * tables to gather candidate {leaf, point-id} tuples, (2) map point
 * ids to leaf shards, (3) launch asynchronous RPCs to the leaves.
 * Response path: merge the distance-sorted leaf lists into the global
 * top-k and answer the front-end.
 */

#ifndef MUSUITE_SERVICES_HDSEARCH_MIDTIER_H
#define MUSUITE_SERVICES_HDSEARCH_MIDTIER_H

#include <memory>
#include <vector>

#include "index/lsh.h"
#include "rpc/channel.h"
#include "rpc/server.h"
#include "services/common/fanout.h"

namespace musuite {
namespace hdsearch {

class MidTier
{
  public:
    /**
     * @param index LSH tables referencing {leaf, point-id} tuples.
     * @param leaves One channel per leaf shard, indexed by leaf id.
     * @param policy Per-leg deadline/retry/hedge and quorum policy;
     *               the default waits for every leg with plain calls.
     */
    MidTier(std::unique_ptr<LshIndex> index,
            std::vector<std::shared_ptr<rpc::Channel>> leaves,
            FanoutPolicy policy = {});

    /** Register the kNearestNeighbors handler. */
    void registerWith(rpc::Server &server);

    const LshIndex &index() const { return *lsh; }
    uint64_t queriesServed() const { return served; }
    /** Responses merged from partial leaf results. */
    uint64_t degradedResponses() const { return degraded; }

  private:
    void handle(rpc::ServerCallPtr call);

    std::unique_ptr<LshIndex> lsh;
    std::vector<std::shared_ptr<rpc::Channel>> leaves;
    FanoutPolicy fanoutPolicy;
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> degraded{0};
};

/**
 * Offline index construction: shard `store` round-robin across
 * `num_leaves` leaves, build the mid-tier LSH over every point, and
 * return the per-leaf shards.
 */
struct BuiltIndex
{
    std::unique_ptr<LshIndex> midTierIndex;
    std::vector<FeatureStore> leafShards;
};

BuiltIndex buildShardedIndex(const FeatureStore &store,
                             uint32_t num_leaves, LshParams params);

} // namespace hdsearch
} // namespace musuite

#endif // MUSUITE_SERVICES_HDSEARCH_MIDTIER_H

/**
 * @file
 * Implementation of the HDSearch leaf.
 */

#include "services/hdsearch/leaf.h"

#include "services/hdsearch/proto.h"

namespace musuite {
namespace hdsearch {

Leaf::Leaf(FeatureStore shard)
    : store(std::move(shard)), scanner(store)
{}

void
Leaf::registerWith(rpc::Server &server)
{
    server.registerHandler(kLeafDistance, [this](rpc::ServerCallPtr call) {
        handle(std::move(call));
    });
}

void
Leaf::handle(rpc::ServerCallPtr call)
{
    LeafNNRequest request;
    if (!decodeMessage(call->body(), request) ||
        request.features.size() != store.dimension()) {
        call->respond(StatusCode::InvalidArgument, "bad leaf request");
        return;
    }
    served.fetch_add(1, std::memory_order_relaxed);

    const std::vector<Neighbor> nearest = scanner.topKOf(
        request.features, request.candidates, request.k);

    LeafNNResponse response;
    response.pointIds.reserve(nearest.size());
    response.distances.reserve(nearest.size());
    for (const Neighbor &neighbor : nearest) {
        response.pointIds.push_back(uint32_t(neighbor.id));
        response.distances.push_back(neighbor.distance);
    }
    call->respondOk(encodeMessage(response));
}

} // namespace hdsearch
} // namespace musuite

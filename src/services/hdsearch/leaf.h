/**
 * @file
 * HDSearch leaf microservice: exact distance computation over the
 * candidate point ids the mid-tier sends, returning a distance-sorted
 * top-k (paper §III-A leaf).
 */

#ifndef MUSUITE_SERVICES_HDSEARCH_LEAF_H
#define MUSUITE_SERVICES_HDSEARCH_LEAF_H

#include <memory>

#include "index/lsh.h"
#include "index/vectors.h"
#include "rpc/server.h"

namespace musuite {
namespace hdsearch {

class Leaf
{
  public:
    /** Takes ownership of this shard's feature vectors. */
    explicit Leaf(FeatureStore shard);

    /** Register the kLeafDistance handler on a server. */
    void registerWith(rpc::Server &server);

    const FeatureStore &shard() const { return store; }
    uint64_t queriesServed() const { return served; }

  private:
    void handle(rpc::ServerCallPtr call);

    FeatureStore store;
    BruteForceScanner scanner;
    std::atomic<uint64_t> served{0};
};

} // namespace hdsearch
} // namespace musuite

#endif // MUSUITE_SERVICES_HDSEARCH_LEAF_H

/**
 * @file
 * Implementation of the HDSearch mid-tier.
 */

#include "services/hdsearch/midtier.h"

#include "base/logging.h"
#include "services/common/fanout.h"
#include "services/hdsearch/proto.h"

namespace musuite {
namespace hdsearch {

MidTier::MidTier(std::unique_ptr<LshIndex> index,
                 std::vector<std::shared_ptr<rpc::Channel>> leaves_in,
                 FanoutPolicy policy)
    : lsh(std::move(index)), leaves(std::move(leaves_in)),
      fanoutPolicy(policy)
{
    MUSUITE_CHECK(!leaves.empty()) << "mid-tier needs leaves";
}

void
MidTier::registerWith(rpc::Server &server)
{
    server.registerHandler(kNearestNeighbors,
                           [this](rpc::ServerCallPtr call) {
                               handle(std::move(call));
                           });
}

void
MidTier::handle(rpc::ServerCallPtr call)
{
    if (failFastIfExpired(call))
        return;
    NNQuery query;
    if (!decodeMessage(call->body(), query) || query.k == 0) {
        call->respond(StatusCode::InvalidArgument, "bad NN query");
        return;
    }
    served.fetch_add(1, std::memory_order_relaxed);

    // Request path step 1-2: LSH lookup, point ids grouped by leaf.
    auto candidates = lsh->query(query.features);
    if (candidates.empty()) {
        // No bucket hits anywhere: legitimately empty result.
        call->respondOk(encodeMessage(NNResponse{}));
        return;
    }

    // Step 3: launch asynchronous clients to the leaf microservers.
    std::vector<FanoutRequest> requests;
    requests.reserve(candidates.size());
    for (auto &[leaf, point_ids] : candidates) {
        if (leaf >= leaves.size()) {
            MUSUITE_WARN() << "LSH entry references unknown leaf "
                           << leaf;
            continue;
        }
        LeafNNRequest leaf_request;
        leaf_request.features = query.features;
        leaf_request.candidates = std::move(point_ids);
        leaf_request.k = query.k;
        FanoutRequest request;
        request.channel = leaves[leaf].get();
        request.body = encodeMessage(leaf_request);
        request.tag = leaf;
        requests.push_back(std::move(request));
    }
    if (requests.empty()) {
        call->respondOk(encodeMessage(NNResponse{}));
        return;
    }

    // Response path: merge distance-sorted leaf lists into the global
    // top-k. Runs on the thread of the completing leaf response (see
    // the fanoutCall threading contract: possibly this very thread).
    const uint32_t k = query.k;
    std::vector<uint32_t> tags;
    tags.reserve(requests.size());
    for (const FanoutRequest &request : requests)
        tags.push_back(request.tag);

    const FanoutOptions fanout_options = fanoutPolicy.resolve(
        requests.size(), call->remainingBudgetNs());
    fanoutCall(kLeafDistance, std::move(requests), fanout_options,
               [this, call, k,
                tags = std::move(tags)](FanoutOutcome outcome) {
                   if (outcome.okLegs == 0) {
                       // No shard contributed: report the dominant
                       // failure (keeping a shedder's retry-after)
                       // rather than an empty OK.
                       respondFailure(
                           call, dominantFailure(outcome.results,
                                                 "no shard answered"));
                       return;
                   }
                   std::vector<std::vector<Neighbor>> lists;
                   lists.reserve(outcome.results.size());
                   bool downstream_degraded = false;
                   for (size_t i = 0; i < outcome.results.size(); ++i) {
                       if (!outcome.results[i].status.isOk())
                           continue; // Degraded: merge what arrived.
                       LeafNNResponse leaf_response;
                       if (!decodeMessage(outcome.results[i].payload,
                                          leaf_response)) {
                           continue;
                       }
                       // OR through a downstream mid-tier's degraded
                       // flag (multi-hop propagation).
                       downstream_degraded |= leaf_response.degraded;
                       std::vector<Neighbor> list;
                       list.reserve(leaf_response.pointIds.size());
                       for (size_t j = 0;
                            j < leaf_response.pointIds.size(); ++j) {
                           list.push_back(
                               {globalPointId(tags[i],
                                              leaf_response.pointIds[j]),
                                leaf_response.distances[j]});
                       }
                       lists.push_back(std::move(list));
                   }

                   const auto merged = mergeTopK(lists, k);
                   NNResponse response;
                   response.pointIds.reserve(merged.size());
                   response.distances.reserve(merged.size());
                   for (const Neighbor &neighbor : merged) {
                       response.pointIds.push_back(neighbor.id);
                       response.distances.push_back(neighbor.distance);
                   }
                   response.degraded =
                       outcome.degraded || downstream_degraded;
                   if (response.degraded)
                       degraded.fetch_add(1,
                                          std::memory_order_relaxed);
                   call->respondOk(encodeMessage(response));
               });
}

BuiltIndex
buildShardedIndex(const FeatureStore &store, uint32_t num_leaves,
                  LshParams params)
{
    MUSUITE_CHECK(num_leaves >= 1) << "need >= 1 leaf";
    BuiltIndex built;
    built.midTierIndex =
        std::make_unique<LshIndex>(store.dimension(), params);
    for (uint32_t leaf = 0; leaf < num_leaves; ++leaf)
        built.leafShards.emplace_back(store.dimension());

    for (uint64_t i = 0; i < store.size(); ++i) {
        const uint32_t leaf = uint32_t(i % num_leaves);
        const uint32_t local =
            uint32_t(built.leafShards[leaf].add(store.view(i)));
        built.midTierIndex->insert(store.view(i), {leaf, local});
    }
    return built;
}

} // namespace hdsearch
} // namespace musuite

/**
 * @file
 * Set Algebra wire messages and method ids (paper §III-C).
 */

#ifndef MUSUITE_SERVICES_SETALGEBRA_PROTO_H
#define MUSUITE_SERVICES_SETALGEBRA_PROTO_H

#include <cstdint>
#include <vector>

#include "serde/wire.h"

namespace musuite {
namespace setalgebra {

enum Method : uint32_t {
    kSearch = 1,    //!< Mid-tier entry point.
    kIntersect = 2, //!< Leaf posting-list intersection.
};

/** Search terms; the same message goes client→mid-tier→leaf. */
struct SearchQuery
{
    std::vector<uint32_t> terms;

    void
    encode(WireWriter &out) const
    {
        out.putU32Vector(terms);
    }

    bool
    decode(WireReader &in)
    {
        terms = in.getU32Vector();
        return in.ok();
    }
};

/** Sorted doc ids: leaf→mid-tier (intersected) and mid-tier→client
 *  (unioned across shards). */
struct PostingReply
{
    std::vector<uint32_t> docIds;
    /** True if some leaf shards did not contribute (partial union). */
    bool degraded = false;

    void
    encode(WireWriter &out) const
    {
        out.putU32Vector(docIds);
        out.putBool(degraded);
    }

    bool
    decode(WireReader &in)
    {
        docIds = in.getU32Vector();
        // Trailing optional field: absent in pre-resilience payloads.
        degraded = in.remaining() > 0 ? in.getBool() : false;
        return in.ok();
    }
};

} // namespace setalgebra
} // namespace musuite

#endif // MUSUITE_SERVICES_SETALGEBRA_PROTO_H

/**
 * @file
 * Set Algebra leaf microservice: posting-list intersection over this
 * shard's inverted index (paper §III-C leaf).
 */

#ifndef MUSUITE_SERVICES_SETALGEBRA_LEAF_H
#define MUSUITE_SERVICES_SETALGEBRA_LEAF_H

#include <memory>

#include "index/postings.h"
#include "rpc/server.h"

namespace musuite {
namespace setalgebra {

class Leaf
{
  public:
    /** Takes ownership of this shard's inverted index. */
    explicit Leaf(std::unique_ptr<InvertedIndex> index);

    void registerWith(rpc::Server &server);

    const InvertedIndex &index() const { return *shard; }
    uint64_t queriesServed() const { return served; }

  private:
    void handle(rpc::ServerCallPtr call);

    std::unique_ptr<InvertedIndex> shard;
    std::atomic<uint64_t> served{0};
};

} // namespace setalgebra
} // namespace musuite

#endif // MUSUITE_SERVICES_SETALGEBRA_LEAF_H

/**
 * @file
 * Set Algebra mid-tier microservice (paper §III-C, Fig. 6): forwards
 * the search terms to every leaf shard and unions the intersected
 * posting lists the leaves return.
 */

#ifndef MUSUITE_SERVICES_SETALGEBRA_MIDTIER_H
#define MUSUITE_SERVICES_SETALGEBRA_MIDTIER_H

#include <memory>
#include <vector>

#include "rpc/channel.h"
#include "rpc/server.h"
#include "services/common/fanout.h"

namespace musuite {
namespace setalgebra {

class MidTier
{
  public:
    explicit MidTier(std::vector<std::shared_ptr<rpc::Channel>> leaves,
                     FanoutPolicy policy = {});

    void registerWith(rpc::Server &server);

    uint64_t queriesServed() const { return served; }
    /** Responses unioned from partial leaf results. */
    uint64_t degradedResponses() const { return degraded; }

  private:
    void handle(rpc::ServerCallPtr call);

    std::vector<std::shared_ptr<rpc::Channel>> leaves;
    FanoutPolicy fanoutPolicy;
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> degraded{0};
};

} // namespace setalgebra
} // namespace musuite

#endif // MUSUITE_SERVICES_SETALGEBRA_MIDTIER_H

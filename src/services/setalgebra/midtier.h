/**
 * @file
 * Set Algebra mid-tier microservice (paper §III-C, Fig. 6): forwards
 * the search terms to every leaf shard and unions the intersected
 * posting lists the leaves return.
 */

#ifndef MUSUITE_SERVICES_SETALGEBRA_MIDTIER_H
#define MUSUITE_SERVICES_SETALGEBRA_MIDTIER_H

#include <memory>
#include <vector>

#include "rpc/channel.h"
#include "rpc/server.h"

namespace musuite {
namespace setalgebra {

class MidTier
{
  public:
    explicit MidTier(std::vector<std::shared_ptr<rpc::Channel>> leaves);

    void registerWith(rpc::Server &server);

    uint64_t queriesServed() const { return served; }

  private:
    void handle(rpc::ServerCallPtr call);

    std::vector<std::shared_ptr<rpc::Channel>> leaves;
    std::atomic<uint64_t> served{0};
};

} // namespace setalgebra
} // namespace musuite

#endif // MUSUITE_SERVICES_SETALGEBRA_MIDTIER_H

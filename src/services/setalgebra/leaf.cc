/**
 * @file
 * Implementation of the Set Algebra leaf.
 */

#include "services/setalgebra/leaf.h"

#include "services/setalgebra/proto.h"

namespace musuite {
namespace setalgebra {

Leaf::Leaf(std::unique_ptr<InvertedIndex> index)
    : shard(std::move(index))
{}

void
Leaf::registerWith(rpc::Server &server)
{
    server.registerHandler(kIntersect, [this](rpc::ServerCallPtr call) {
        handle(std::move(call));
    });
}

void
Leaf::handle(rpc::ServerCallPtr call)
{
    SearchQuery query;
    if (!decodeMessage(call->body(), query) || query.terms.empty()) {
        call->respond(StatusCode::InvalidArgument, "bad search query");
        return;
    }
    served.fetch_add(1, std::memory_order_relaxed);

    PostingReply reply;
    reply.docIds = shard->intersectTerms(query.terms);
    call->respondOk(encodeMessage(reply));
}

} // namespace setalgebra
} // namespace musuite

/**
 * @file
 * Implementation of the Set Algebra mid-tier.
 */

#include "services/setalgebra/midtier.h"

#include "base/logging.h"
#include "index/postings.h"
#include "services/common/fanout.h"
#include "services/setalgebra/proto.h"

namespace musuite {
namespace setalgebra {

MidTier::MidTier(std::vector<std::shared_ptr<rpc::Channel>> leaves_in,
                 FanoutPolicy policy)
    : leaves(std::move(leaves_in)), fanoutPolicy(policy)
{
    MUSUITE_CHECK(!leaves.empty()) << "set algebra needs leaves";
}

void
MidTier::registerWith(rpc::Server &server)
{
    server.registerHandler(kSearch, [this](rpc::ServerCallPtr call) {
        handle(std::move(call));
    });
}

void
MidTier::handle(rpc::ServerCallPtr call)
{
    if (failFastIfExpired(call))
        return;
    SearchQuery query;
    if (!decodeMessage(call->body(), query) || query.terms.empty()) {
        call->respond(StatusCode::InvalidArgument, "bad search query");
        return;
    }
    served.fetch_add(1, std::memory_order_relaxed);

    // Request path: forward the terms to every leaf shard.
    std::vector<FanoutRequest> requests;
    requests.reserve(leaves.size());
    for (auto &leaf : leaves) {
        FanoutRequest request;
        request.channel = leaf.get();
        request.body = call->body(); // Same SearchQuery shape.
        requests.push_back(std::move(request));
    }

    // Response path: set union over the per-shard intersections. May
    // run inline on this thread (fanoutCall threading contract).
    const FanoutOptions fanout_options = fanoutPolicy.resolve(
        requests.size(), call->remainingBudgetNs());
    fanoutCall(kIntersect, std::move(requests), fanout_options,
               [this, call](FanoutOutcome outcome) {
                   if (outcome.okLegs == 0) {
                       // Nothing merged: surface the dominant failure
                       // (and a shedding shard's retry-after) instead
                       // of a hollow OK.
                       respondFailure(
                           call, dominantFailure(outcome.results,
                                                 "no shard answered"));
                       return;
                   }
                   std::vector<std::vector<uint32_t>> lists;
                   lists.reserve(outcome.results.size());
                   bool downstream_degraded = false;
                   for (const LeafResult &result : outcome.results) {
                       if (!result.status.isOk())
                           continue; // Degraded result set.
                       PostingReply reply;
                       if (decodeMessage(result.payload, reply)) {
                           lists.push_back(std::move(reply.docIds));
                           // A shard that is itself a mid-tier may
                           // answer degraded; OR it through so depth-N
                           // callers see it.
                           downstream_degraded |= reply.degraded;
                       }
                   }
                   PostingReply merged;
                   merged.docIds = unionAll(lists);
                   merged.degraded =
                       outcome.degraded || downstream_degraded;
                   if (merged.degraded)
                       degraded.fetch_add(1,
                                          std::memory_order_relaxed);
                   call->respondOk(encodeMessage(merged));
               });
}

} // namespace setalgebra
} // namespace musuite

/**
 * @file
 * Implementation of the Recommend leaf.
 */

#include "services/recommend/leaf.h"

#include "services/recommend/proto.h"

namespace musuite {
namespace recommend {

Leaf::Leaf(SparseRatings shard, CfOptions options)
    : cf(std::move(shard), options)
{}

void
Leaf::registerWith(rpc::Server &server)
{
    server.registerHandler(kLeafPredict, [this](rpc::ServerCallPtr call) {
        handle(std::move(call));
    });
}

void
Leaf::handle(rpc::ServerCallPtr call)
{
    RatingQuery query;
    if (!decodeMessage(call->body(), query)) {
        call->respond(StatusCode::InvalidArgument, "bad rating query");
        return;
    }
    served.fetch_add(1, std::memory_order_relaxed);

    RatingReply reply;
    reply.rating = cf.predict(query.user, query.item);
    call->respondOk(encodeMessage(reply));
}

} // namespace recommend
} // namespace musuite

/**
 * @file
 * Recommend leaf microservice: offline sparse-matrix composition and
 * NMF, online user-kNN collaborative-filtering prediction over this
 * leaf's shard of the utility matrix (paper §III-D leaf).
 */

#ifndef MUSUITE_SERVICES_RECOMMEND_LEAF_H
#define MUSUITE_SERVICES_RECOMMEND_LEAF_H

#include <memory>

#include "ml/cf.h"
#include "rpc/server.h"

namespace musuite {
namespace recommend {

class Leaf
{
  public:
    /** Trains (NMF) at construction; takes the shard's ratings. */
    Leaf(SparseRatings shard, CfOptions options = {});

    void registerWith(rpc::Server &server);

    const CollaborativeFilter &filter() const { return cf; }
    uint64_t queriesServed() const { return served; }

  private:
    void handle(rpc::ServerCallPtr call);

    CollaborativeFilter cf;
    std::atomic<uint64_t> served{0};
};

} // namespace recommend
} // namespace musuite

#endif // MUSUITE_SERVICES_RECOMMEND_LEAF_H

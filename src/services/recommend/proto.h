/**
 * @file
 * Recommend wire messages and method ids (paper §III-D).
 */

#ifndef MUSUITE_SERVICES_RECOMMEND_PROTO_H
#define MUSUITE_SERVICES_RECOMMEND_PROTO_H

#include <cstdint>

#include "serde/wire.h"

namespace musuite {
namespace recommend {

enum Method : uint32_t {
    kPredict = 1,     //!< Mid-tier entry point.
    kLeafPredict = 2, //!< Leaf collaborative-filtering prediction.
};

/** {user, item} query pair; client→mid-tier→leaf. */
struct RatingQuery
{
    uint32_t user = 0;
    uint32_t item = 0;

    void
    encode(WireWriter &out) const
    {
        out.putVarint(user);
        out.putVarint(item);
    }

    bool
    decode(WireReader &in)
    {
        user = uint32_t(in.getVarint());
        item = uint32_t(in.getVarint());
        return in.ok();
    }
};

/** Predicted rating; leaf→mid-tier and (averaged) mid-tier→client. */
struct RatingReply
{
    double rating = 0.0;
    /** True if some leaf shards did not contribute to the average. */
    bool degraded = false;

    void
    encode(WireWriter &out) const
    {
        out.putDouble(rating);
        out.putBool(degraded);
    }

    bool
    decode(WireReader &in)
    {
        rating = in.getDouble();
        // Trailing optional field: absent in pre-resilience payloads.
        degraded = in.remaining() > 0 ? in.getBool() : false;
        return in.ok();
    }
};

} // namespace recommend
} // namespace musuite

#endif // MUSUITE_SERVICES_RECOMMEND_PROTO_H

/**
 * @file
 * Recommend mid-tier microservice (paper §III-D, Fig. 7): forwards
 * the {user, item} pair to every leaf shard and averages the rating
 * predictions the leaves return.
 */

#ifndef MUSUITE_SERVICES_RECOMMEND_MIDTIER_H
#define MUSUITE_SERVICES_RECOMMEND_MIDTIER_H

#include <memory>
#include <vector>

#include "ml/matrix.h"
#include "rpc/channel.h"
#include "rpc/server.h"
#include "services/common/fanout.h"

namespace musuite {
namespace recommend {

class MidTier
{
  public:
    explicit MidTier(std::vector<std::shared_ptr<rpc::Channel>> leaves,
                     FanoutPolicy policy = {});

    void registerWith(rpc::Server &server);

    uint64_t queriesServed() const { return served; }
    /** Responses averaged from partial leaf results. */
    uint64_t degradedResponses() const { return degraded; }

  private:
    void handle(rpc::ServerCallPtr call);

    std::vector<std::shared_ptr<rpc::Channel>> leaves;
    FanoutPolicy fanoutPolicy;
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> degraded{0};
};

/**
 * Shard observed ratings round-robin across leaves: every leaf sees
 * the full user/item id space but only a slice of the observations,
 * which is what makes averaging the per-shard predictions meaningful.
 */
std::vector<SparseRatings> shardRatings(const SparseRatings &all,
                                        uint32_t num_leaves);

} // namespace recommend
} // namespace musuite

#endif // MUSUITE_SERVICES_RECOMMEND_MIDTIER_H

/**
 * @file
 * Implementation of the Recommend mid-tier.
 */

#include "services/recommend/midtier.h"

#include "base/logging.h"
#include "ml/matrix.h"
#include "services/common/fanout.h"
#include "services/recommend/proto.h"

namespace musuite {
namespace recommend {

MidTier::MidTier(std::vector<std::shared_ptr<rpc::Channel>> leaves_in,
                 FanoutPolicy policy)
    : leaves(std::move(leaves_in)), fanoutPolicy(policy)
{
    MUSUITE_CHECK(!leaves.empty()) << "recommend needs leaves";
}

void
MidTier::registerWith(rpc::Server &server)
{
    server.registerHandler(kPredict, [this](rpc::ServerCallPtr call) {
        handle(std::move(call));
    });
}

void
MidTier::handle(rpc::ServerCallPtr call)
{
    if (failFastIfExpired(call))
        return;
    RatingQuery query;
    if (!decodeMessage(call->body(), query)) {
        call->respond(StatusCode::InvalidArgument, "bad rating query");
        return;
    }
    served.fetch_add(1, std::memory_order_relaxed);

    // Request path: forward the pair to every leaf.
    std::vector<FanoutRequest> requests;
    requests.reserve(leaves.size());
    for (auto &leaf : leaves) {
        FanoutRequest request;
        request.channel = leaf.get();
        request.body = call->body();
        requests.push_back(std::move(request));
    }

    // Response path: average of the ratings received from leaves. May
    // run inline on this thread (fanoutCall threading contract).
    const FanoutOptions fanout_options = fanoutPolicy.resolve(
        requests.size(), call->remainingBudgetNs());
    fanoutCall(kLeafPredict, std::move(requests), fanout_options,
               [this, call](FanoutOutcome outcome) {
                   double sum = 0.0;
                   uint32_t answered = 0;
                   bool downstream_degraded = false;
                   for (const LeafResult &result : outcome.results) {
                       if (!result.status.isOk())
                           continue;
                       RatingReply reply;
                       if (decodeMessage(result.payload, reply)) {
                           sum += reply.rating;
                           ++answered;
                           // OR through a downstream mid-tier's own
                           // degraded answer (multi-hop propagation).
                           downstream_degraded |= reply.degraded;
                       }
                   }
                   if (answered == 0) {
                       respondFailure(
                           call, dominantFailure(outcome.results,
                                                 "no leaf predictions"));
                       return;
                   }
                   RatingReply averaged;
                   averaged.rating = sum / double(answered);
                   averaged.degraded =
                       outcome.degraded || downstream_degraded;
                   if (averaged.degraded)
                       degraded.fetch_add(1,
                                          std::memory_order_relaxed);
                   call->respondOk(encodeMessage(averaged));
               });
}

std::vector<SparseRatings>
shardRatings(const SparseRatings &all, uint32_t num_leaves)
{
    MUSUITE_CHECK(num_leaves >= 1) << "need >= 1 leaf";
    std::vector<std::vector<Rating>> buckets(num_leaves);
    const auto &observed = all.observed();
    for (size_t i = 0; i < observed.size(); ++i)
        buckets[i % num_leaves].push_back(observed[i]);

    std::vector<SparseRatings> shards;
    shards.reserve(num_leaves);
    for (auto &bucket : buckets) {
        shards.emplace_back(all.userCount(), all.itemCount(),
                            std::move(bucket));
    }
    return shards;
}

} // namespace recommend
} // namespace musuite

/**
 * @file
 * Graph-service wire messages and method ids.
 *
 * The graph mid-tier is topology-generic: every node — front-end,
 * interior mid-tier, leaf — speaks the same kProcess method with the
 * same request/reply shapes, so a request DAG of any depth is just
 * nodes wired to nodes through Channels. The reply aggregates how
 * many nodes the request actually visited and whether any hop merged
 * a partial (degraded) result, which is what the deep-DAG propagation
 * tests assert on.
 */

#ifndef MUSUITE_SERVICES_GRAPH_PROTO_H
#define MUSUITE_SERVICES_GRAPH_PROTO_H

#include <cstdint>

#include "serde/wire.h"

namespace musuite {
namespace graph {

/** Method ids on every graph node. */
enum Method : uint32_t {
    kProcess = 1, //!< The single request-DAG entry point.
};

struct GraphRequest
{
    /** Caller-assigned id carried verbatim through the DAG. */
    uint64_t workId = 0;

    void
    encode(WireWriter &out) const
    {
        out.putVarint(workId);
    }

    bool
    decode(WireReader &in)
    {
        workId = in.getVarint();
        return in.ok();
    }
};

struct GraphReply
{
    uint64_t workId = 0;
    /** Nodes that ran compute for this request (self + downstream). */
    uint32_t nodesVisited = 0;
    /** True if this node — or any node below it — merged a partial
     *  result or answered degraded (OR-ed through every hop). */
    bool degraded = false;
    /** True iff this node answered from its cache (no downstream). */
    bool cacheHit = false;

    void
    encode(WireWriter &out) const
    {
        out.putVarint(workId);
        out.putVarint(nodesVisited);
        out.putBool(degraded);
        out.putBool(cacheHit);
    }

    bool
    decode(WireReader &in)
    {
        workId = in.getVarint();
        nodesVisited = uint32_t(in.getVarint());
        degraded = in.remaining() > 0 ? in.getBool() : false;
        cacheHit = in.remaining() > 0 ? in.getBool() : false;
        return in.ok();
    }
};

} // namespace graph
} // namespace musuite

#endif // MUSUITE_SERVICES_GRAPH_PROTO_H

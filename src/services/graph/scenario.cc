/**
 * @file
 * The named scenario library (see scenario.h).
 */

#include "services/graph/scenario.h"

namespace musuite {
namespace graph {

size_t
GraphScenario::tierWidth(size_t depth) const
{
    if (depth > stages.size())
        return 0;
    size_t width = 1;
    for (size_t i = 0; i < depth; ++i)
        width *= stages[i].fanout;
    return width;
}

size_t
GraphScenario::nodeCount() const
{
    size_t total = 1; // Root.
    size_t width = 1;
    for (const StageSpec &stage : stages) {
        width *= stage.fanout;
        total += width;
    }
    return total;
}

namespace {

/** The shared 3-deep skeleton: root -> 3 mids -> 9 mids -> 27 leaves
 *  collapses budgets/faults differently per scenario but keeps the
 *  same shape so results are comparable. */
GraphScenario
baseDag(uint64_t seed, std::string name)
{
    GraphScenario scenario;
    scenario.name = std::move(name);
    scenario.seed = seed;
    scenario.stages.resize(3);

    // Tier 1: aggregation mid-tiers close to the root.
    scenario.stages[0].fanout = 3;
    scenario.stages[0].computeNs = 80'000;
    scenario.stages[0].workers = 4;
    scenario.stages[0].queueCapacity = 64;
    scenario.stages[0].link = {40'000, 10'000, 0.0, 0};
    scenario.stages[0].quorumFraction = 1.0;
    scenario.stages[0].legDeadlineNs = 30'000'000;
    scenario.stages[0].legTotalDeadlineNs = 60'000'000;

    // Tier 2: interior mid-tiers.
    scenario.stages[1].fanout = 3;
    scenario.stages[1].computeNs = 60'000;
    scenario.stages[1].workers = 4;
    scenario.stages[1].queueCapacity = 48;
    scenario.stages[1].link = {30'000, 8'000, 0.0, 0};
    scenario.stages[1].quorumFraction = 1.0;
    scenario.stages[1].legDeadlineNs = 20'000'000;
    scenario.stages[1].legTotalDeadlineNs = 40'000'000;

    // Tier 3: leaves.
    scenario.stages[2].fanout = 3;
    scenario.stages[2].computeNs = 120'000;
    scenario.stages[2].workers = 2;
    scenario.stages[2].queueCapacity = 32;
    scenario.stages[2].link = {25'000, 6'000, 0.0, 0};
    scenario.stages[2].quorumFraction = 1.0;
    scenario.stages[2].legDeadlineNs = 10'000'000;
    scenario.stages[2].legTotalDeadlineNs = 20'000'000;
    return scenario;
}

} // namespace

GraphScenario
steadyDag(uint64_t seed)
{
    return baseDag(seed, "steady");
}

GraphScenario
brownoutDag(uint64_t seed)
{
    GraphScenario scenario = baseDag(seed, "brownout");
    // One slow leaf per group: every leaf fan-out sees child 0 pay a
    // large injected delay on most requests, so quorum completion and
    // degraded propagation carry the tier.
    StageSpec &leaves = scenario.stages[2];
    leaves.fault.delayRequestProb = 0.9;
    leaves.fault.delayNs = 15'000'000; // Past the 10ms leg deadline.
    leaves.fault.onlyChild = 0;
    leaves.quorumFraction = 0.5; // Complete on 2/3 once one fails.
    // Tail-heavy leaf links even for the healthy children.
    leaves.link.tailProb = 0.05;
    leaves.link.tailNs = 2'000'000;
    return scenario;
}

GraphScenario
grayDag(uint64_t seed, bool eject_outliers)
{
    GraphScenario scenario =
        baseDag(seed, eject_outliers ? "gray" : "gray_noeject");
    // No static faults: the chaos campaign injects its gray shapes
    // (zombie, slow-ramp, flap, partition) onto the leaf links at
    // runtime. Leaves complete on 2/3 quorum so ejecting the one bad
    // child per group keeps requests whole, and the builder caps the
    // policy's ejectable fraction at 1 - quorum.
    StageSpec &leaves = scenario.stages[2];
    leaves.quorumFraction = 0.5;
    leaves.ejectOutliers = eject_outliers;
    return scenario;
}

GraphScenario
retryStormDag(uint64_t seed)
{
    GraphScenario scenario = baseDag(seed, "retry_storm");
    // Tiny leaf service capacity: offered load past the leaf tier's
    // capacity sheds with RESOURCE_EXHAUSTED + retry-after, and the
    // parents retry — the scenario that flushes lost pacing hints.
    StageSpec &leaves = scenario.stages[2];
    leaves.workers = 1;
    leaves.queueCapacity = 2;
    leaves.computeNs = 400'000;
    // Parents retry shed legs; their backoff must be floored by the
    // propagated retry-after, not their own 1ms schedule.
    scenario.stages[1].maxAttempts = 2;
    scenario.stages[2].maxAttempts = 2;
    return scenario;
}

} // namespace graph
} // namespace musuite

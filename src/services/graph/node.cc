/**
 * @file
 * Implementation of the graph-service node.
 */

#include "services/graph/node.h"

#include <algorithm>

#include "base/clock.h"
#include "base/logging.h"
#include "services/graph/proto.h"
#include "stats/counters.h"

namespace musuite {
namespace graph {

GraphNode::GraphNode(
    Clock &clock_in,
    std::vector<std::shared_ptr<rpc::Channel>> downstream_in,
    NodeOptions options_in)
    : clock(clock_in), downstream(std::move(downstream_in)),
      options(std::move(options_in)),
      workerFreeAtNs(std::max<uint32_t>(1, options.workers), 0),
      rng(options.seed)
{
    MUSUITE_CHECK(options.computeNs >= 0) << "negative compute time";
    // An ejection policy on the fan-out makes this node the pool
    // owner: watch every downstream channel so each one gets a
    // PeerHealth fed from its attempt outcomes, and the policy can
    // judge the pool when fanoutDownstream resolves its options.
    if (options.fanout.ejection) {
        for (const auto &channel : downstream)
            options.fanout.ejection->watch(*channel);
    }
}

void
GraphNode::registerWith(rpc::Server &server)
{
    server.registerHandler(kProcess, [this](rpc::ServerCallPtr call) {
        handle(std::move(call));
    });
}

void
GraphNode::handle(rpc::ServerCallPtr call)
{
    if (failFastIfExpired(call))
        return;
    GraphRequest request;
    if (!decodeMessage(call->body(), request)) {
        call->respond(StatusCode::InvalidArgument,
                      "bad graph request");
        return;
    }
    served.fetch_add(1, std::memory_order_relaxed);

    // Admission + queue model: claim the earliest-free worker slot,
    // or shed when compute occupancy is at capacity. The retry-after
    // hint is the real drain time — when a slot frees up plus one
    // service time — so upstream backoff is paced by actual load.
    bool admitted = true;
    int64_t finish_delay_ns = 0;
    int64_t retry_after_ns = 0;
    {
        MutexLock guard(mutex);
        const int64_t now_ns = clock.nowNanos();
        auto slot = std::min_element(workerFreeAtNs.begin(),
                                     workerFreeAtNs.end());
        if (options.queueCapacity != 0 &&
            inflight >= options.workers + options.queueCapacity) {
            admitted = false;
            retry_after_ns = std::max<int64_t>(*slot - now_ns, 0) +
                             options.computeNs;
        } else {
            const int64_t start_ns = std::max(now_ns, *slot);
            *slot = start_ns + options.computeNs;
            finish_delay_ns = *slot - now_ns;
            ++inflight;
        }
    }
    if (!admitted) {
        shed.fetch_add(1, std::memory_order_relaxed);
        globalCounters().counter("graph.node.shed").add();
        call->respond(StatusCode::ResourceExhausted, "",
                      retry_after_ns);
        return;
    }

    const uint64_t work_id = request.workId;
    clock.schedule(finish_delay_ns,
                   [this, call = std::move(call), work_id] {
                       onComputeDone(call, work_id);
                   });
}

void
GraphNode::onComputeDone(rpc::ServerCallPtr call, uint64_t work_id)
{
    bool cache_hit = false;
    {
        MutexLock guard(mutex);
        MUSUITE_CHECK(inflight > 0) << "compute/inflight mismatch";
        --inflight;
        cache_hit = options.cacheHitRatio > 0.0 &&
                    rng.nextBool(options.cacheHitRatio);
    }

    // The budget ran out while this request queued or computed: the
    // root has stopped waiting, so don't burn downstream work on it.
    if (call->deadlineNanos() != 0 && call->remainingBudgetNs() <= 1) {
        globalCounters().counter("graph.node.expired").add();
        call->respond(StatusCode::DeadlineExceeded, "");
        return;
    }

    if (cache_hit || downstream.empty()) {
        if (cache_hit)
            globalCounters().counter("graph.node.cache_hit").add();
        GraphReply reply;
        reply.workId = work_id;
        reply.nodesVisited = 1;
        reply.cacheHit = cache_hit;
        call->respondOk(encodeMessage(reply));
        return;
    }
    fanoutDownstream(call, work_id);
}

void
GraphNode::fanoutDownstream(rpc::ServerCallPtr call, uint64_t work_id)
{
    GraphRequest forward;
    forward.workId = work_id;

    std::vector<FanoutRequest> requests;
    requests.reserve(downstream.size());
    for (size_t i = 0; i < downstream.size(); ++i) {
        FanoutRequest request;
        request.channel = downstream[i].get();
        request.body = encodeMessage(forward);
        request.tag = uint32_t(i);
        requests.push_back(std::move(request));
    }

    // The budget is re-read *here*, after queue wait + compute: each
    // hop forwards only what is actually left of the root deadline
    // (budget-decrement rule; mulint deadline-taint enforces that the
    // resolve argument is budget-derived at every services fan-out).
    const FanoutOptions fanout_options = options.fanout.resolve(
        requests.size(), call->remainingBudgetNs());
    fanoutCall(
        kProcess, std::move(requests), fanout_options,
        [this, call, work_id](FanoutOutcome outcome) {
            if (outcome.okLegs == 0) {
                // Total downstream failure: the dominant leg status
                // goes upstream with the max retry-after preserved.
                respondFailure(call,
                               dominantFailure(outcome.results,
                                               "graph fan-out failed"));
                return;
            }
            GraphReply merged;
            merged.workId = work_id;
            merged.nodesVisited = 1; // Self.
            bool downstream_degraded = false;
            for (const LeafResult &result : outcome.results) {
                if (!result.status.isOk())
                    continue;
                GraphReply reply;
                if (decodeMessage(result.payload, reply)) {
                    merged.nodesVisited += reply.nodesVisited;
                    // OR the whole subtree's degraded flag through
                    // (multi-hop propagation fix).
                    downstream_degraded |= reply.degraded;
                }
            }
            merged.degraded = outcome.degraded || downstream_degraded;
            if (merged.degraded)
                degraded.fetch_add(1, std::memory_order_relaxed);
            call->respondOk(encodeMessage(merged));
        });
}

} // namespace graph
} // namespace musuite

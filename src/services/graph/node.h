/**
 * @file
 * GraphNode: the composable service-graph mid-tier (ROADMAP item 4).
 *
 * One node is one microservice in a request DAG. Unlike the four
 * paper services — whose downstreams are always leaves — a GraphNode's
 * downstream channels can point at *other GraphNodes*, so arbitrary
 * depth-N topologies compose through the existing Channel seam with
 * the full retry/hedge/breaker machinery on every hop.
 *
 * Each node models its own compute/queue station (k workers × bounded
 * queue) explicitly in virtual time, because the simulated deployments
 * run on unstarted Servers whose invokeLocal has no thread pool:
 *
 *   arrival ── admission ── queue wait ── compute ── cache / fan-out
 *
 *  - Admission: at capacity (workers + queueCapacity in flight) the
 *    request is shed with RESOURCE_EXHAUSTED and a retry-after hint of
 *    the earliest time a worker frees up (`graph.node.shed`).
 *  - The compute completion fires on the node's Clock after queue wait
 *    plus service time; a request whose inbound budget ran out while
 *    queued is answered DEADLINE_EXCEEDED without downstream work
 *    (`graph.node.expired`, the tier-3 shedding analog).
 *  - Cache: with probability cacheHitRatio (seeded) the node answers
 *    immediately after compute (`graph.node.cache_hit`).
 *  - Otherwise it fans out to every downstream channel through
 *    fanoutCall with the policy resolved against the budget remaining
 *    *now* — never the budget as received (budget-decrement rule).
 *
 * Propagation contract (the three multi-hop fixes, enforced here and
 * tested at depth 3): the remaining budget is re-read at every
 * forwarding point; a downstream reply's degraded flag is OR-ed into
 * this node's reply; and when every leg fails, the dominant failure —
 * including the max downstream retry-after — goes upstream instead of
 * a re-minted local error.
 */

#ifndef MUSUITE_SERVICES_GRAPH_NODE_H
#define MUSUITE_SERVICES_GRAPH_NODE_H

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/threading.h"
#include "rpc/channel.h"
#include "rpc/server.h"
#include "services/common/fanout.h"

namespace musuite {

class Clock;

namespace graph {

struct NodeOptions
{
    std::string name = "graph";
    int64_t computeNs = 100'000; //!< Service time per request.
    uint32_t workers = 4;        //!< Parallel compute slots.
    /** Waiting slots beyond the workers; arrivals past
     *  workers + queueCapacity in flight are shed. 0 = unbounded. */
    uint32_t queueCapacity = 64;
    double cacheHitRatio = 0.0;
    uint64_t seed = 1;
    /** Per-leg policy for the downstream fan-out. */
    FanoutPolicy fanout;
};

class GraphNode
{
  public:
    /**
     * `clock` times compute (must be the same clock domain as the
     * downstream channels and the hosting server). Leaf nodes pass an
     * empty `downstream`.
     */
    GraphNode(Clock &clock,
              std::vector<std::shared_ptr<rpc::Channel>> downstream,
              NodeOptions options = {});

    void registerWith(rpc::Server &server);

    uint64_t requestsServed() const { return served; }
    uint64_t requestsShed() const { return shed; }
    uint64_t degradedReplies() const { return degraded; }

  private:
    void handle(rpc::ServerCallPtr call);
    /** Queue wait + compute elapsed; answer or fan out. */
    void onComputeDone(rpc::ServerCallPtr call, uint64_t work_id);
    void fanoutDownstream(rpc::ServerCallPtr call, uint64_t work_id);

    Clock &clock;
    std::vector<std::shared_ptr<rpc::Channel>> downstream;
    NodeOptions options;

    Mutex mutex{LockRank::graphNode, "graph.node"};
    /** Virtual instant each worker slot next becomes free. */
    std::vector<int64_t> workerFreeAtNs GUARDED_BY(mutex);
    uint32_t inflight GUARDED_BY(mutex) = 0;
    Rng rng GUARDED_BY(mutex);

    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> degraded{0};
};

} // namespace graph
} // namespace musuite

#endif // MUSUITE_SERVICES_GRAPH_NODE_H

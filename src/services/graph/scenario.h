/**
 * @file
 * Declarative request-DAG scenarios: topologies as data, not code.
 *
 * A GraphScenario describes an N-tier deployment tier by tier — how
 * many children each node fans out to, the per-node compute/queue
 * model, the cache hit ratio, the latency *distribution* of the links
 * into the tier, the per-leg resilience policy, and an optional fault
 * shape (slow-leaf brownout, shedding storm). The spec is plain data:
 * `sim::buildTopology` instantiates it as real GraphNode servers wired
 * through SimChannels on one SimClock, and `bench/dag_storm` plus
 * `tests/sim_replay_test` drive the same specs, so a scenario added
 * here is immediately benchable and replay-testable.
 */

#ifndef MUSUITE_SERVICES_GRAPH_SCENARIO_H
#define MUSUITE_SERVICES_GRAPH_SCENARIO_H

#include <cstdint>
#include <string>
#include <vector>

namespace musuite {
namespace graph {

/** Latency distribution of one tier's inbound links (virtual ns).
 *  jitter/tail mirror sim::SimLink: uniform jitter in [0, jitterNs)
 *  plus a tailNs excursion with probability tailProb. */
struct LatencySpec
{
    int64_t baseNs = 50'000;
    int64_t jitterNs = 0;
    double tailProb = 0.0;
    int64_t tailNs = 0;
};

/** Deterministic fault shape applied to one tier's inbound links. */
struct FaultShape
{
    double errorProb = 0.0;        //!< Fail a request outright.
    double dropRequestProb = 0.0;  //!< Blackhole a request.
    double delayRequestProb = 0.0; //!< Delay a request...
    int64_t delayNs = 0;           //!< ...by this much.
    /**
     * -1 = apply to every child in the tier. Otherwise only the
     * child with this index inside each parent's group is faulted —
     * the single-slow-leaf brownout shape.
     */
    int32_t onlyChild = -1;

    bool
    enabled() const
    {
        return errorProb > 0.0 || dropRequestProb > 0.0 ||
               delayRequestProb > 0.0;
    }
};

/**
 * One tier of the DAG, describing the nodes at this depth and the
 * links from the tier above. stages[0] is the tier directly below the
 * root; the last stage's nodes are leaves (no downstream fan-out).
 */
struct StageSpec
{
    /** Children per parent node (tier width multiplier). */
    uint32_t fanout = 3;

    // --- per-node compute/queue model (GraphNode::Options) -----------
    int64_t computeNs = 100'000;
    uint32_t workers = 4;
    uint32_t queueCapacity = 64;
    double cacheHitRatio = 0.0;

    // --- links from the parent tier into this tier -------------------
    LatencySpec link;
    FaultShape fault;

    // --- per-leg resilience policy at the *parent's* fan-out ---------
    double quorumFraction = 1.0;
    int64_t legDeadlineNs = 0;
    int64_t legTotalDeadlineNs = 0;
    int maxAttempts = 1;
    int64_t backoffBaseNs = 1'000'000;
    /**
     * Give every parent of this tier an outlier-ejection policy
     * (rpc/health.h) over its children. The builder caps the policy's
     * maxEjectedFraction at 1 - quorumFraction when a quorum is set,
     * so ejection can never starve the fan-out's quorum.
     */
    bool ejectOutliers = false;
};

struct GraphScenario
{
    std::string name = "dag";
    /** Master seed: node RNGs, link samplers, and fault injectors all
     *  derive from it, so (spec, seed) fully determines a replay. */
    uint64_t seed = 1;
    std::vector<StageSpec> stages;

    // --- the root (front-end) node's own compute model ---------------
    int64_t rootComputeNs = 20'000;
    uint32_t rootWorkers = 8;
    uint32_t rootQueueCapacity = 128;

    /** Total node count of the instantiated tree, root included. */
    size_t nodeCount() const;
    /** Nodes in tier `depth` (0 = the single root). */
    size_t tierWidth(size_t depth) const;
};

// --- named scenario library ------------------------------------------
// Shared by bench/dag_storm and tests/sim_replay_test so benchmarks
// and replay invariants exercise the exact same topologies.

/** 3-deep, fan-out 3 per stage, modest load, no faults. */
GraphScenario steadyDag(uint64_t seed);

/** 3-deep with one persistently slow leaf per group (brownout) and a
 *  tail-heavy leaf link distribution. */
GraphScenario brownoutDag(uint64_t seed);

/** 3-deep with tiny leaf queues that shed under pressure: the
 *  retry-after propagation / retry-amplification scenario. */
GraphScenario retryStormDag(uint64_t seed);

/**
 * 3-deep gray-failure testbed: leaf fan-outs run at quorum 2/3 with
 * outlier ejection armed (when `eject_outliers`), and carry no static
 * faults — the chaos campaign (simkernel/chaos.h) injects zombie /
 * slow-ramp / flap / partition shapes onto the leaf links at runtime.
 * The eject_outliers=false variant is the ablation baseline
 * bench/chaos_storm compares p99 against.
 */
GraphScenario grayDag(uint64_t seed, bool eject_outliers = true);

} // namespace graph
} // namespace musuite

#endif // MUSUITE_SERVICES_GRAPH_SCENARIO_H

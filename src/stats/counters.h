/**
 * @file
 * Named monotonic counters with snapshot/diff support.
 *
 * The syscall-invocation figures of the paper (Figs. 11-14) are counts
 * of events per QPS over a measurement window; CounterSet provides the
 * snapshot-at-window-edges mechanics. Counters are plain atomics so hot
 * paths pay one relaxed increment.
 */

#ifndef MUSUITE_STATS_COUNTERS_H
#define MUSUITE_STATS_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/threading.h"

namespace musuite {

/** A single monotonic event counter. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t get() const { return value.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value{0};
};

/** Point-in-time copy of a CounterSet. */
using CounterSnapshot = std::map<std::string, uint64_t>;

/**
 * A registry of named counters. Lookup is mutex-guarded (cold);
 * increments through the returned reference are lock-free. Counter
 * references remain valid for the life of the set.
 */
class CounterSet
{
  public:
    /** Find or create the counter with the given name. */
    Counter &counter(const std::string &name);

    /** Copy all current values. */
    CounterSnapshot snapshot() const;

    /** Per-name difference (after - before), omitting zero deltas. */
    static CounterSnapshot diff(const CounterSnapshot &before,
                                const CounterSnapshot &after);

    /** Zero is impossible for monotonic counters; reset drops them. */
    void clear();

  private:
    mutable Mutex mutex{LockRank::counters, "stats.counters"};
    std::map<std::string, std::unique_ptr<Counter>> counters
        GUARDED_BY(mutex);
};

/** Process-global counter set used by the transport/ostrace layers. */
CounterSet &globalCounters();

} // namespace musuite

#endif // MUSUITE_STATS_COUNTERS_H

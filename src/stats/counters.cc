/**
 * @file
 * Implementation of the counter registry.
 */

#include "stats/counters.h"

namespace musuite {

Counter &
CounterSet::counter(const std::string &name)
{
    MutexLock guard(mutex);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

CounterSnapshot
CounterSet::snapshot() const
{
    MutexLock guard(mutex);
    CounterSnapshot snap;
    for (const auto &[name, counter] : counters)
        snap[name] = counter->get();
    return snap;
}

CounterSnapshot
CounterSet::diff(const CounterSnapshot &before, const CounterSnapshot &after)
{
    CounterSnapshot delta;
    for (const auto &[name, value] : after) {
        auto it = before.find(name);
        const uint64_t prior = it == before.end() ? 0 : it->second;
        if (value > prior)
            delta[name] = value - prior;
    }
    return delta;
}

void
CounterSet::clear()
{
    MutexLock guard(mutex);
    counters.clear();
}

CounterSet &
globalCounters()
{
    static CounterSet set;
    return set;
}

} // namespace musuite

/**
 * @file
 * Time-bucketed goodput tracking and recovery-time measurement.
 *
 * The chaos experiments need more than end-of-run percentiles: they
 * ask *when* a system detected a fault and *when* it got back to
 * healthy throughput after the fault cleared. A GoodputTracker bins
 * completions into fixed-width time buckets (virtual or wall ns —
 * the tracker only sees instants) so a bench can measure baseline
 * goodput before a fault, then find the first instant after the
 * fault clears at which goodput returns to a fraction of that
 * baseline and *stays* there for a sustain window.
 *
 * Header-only and unsynchronized: feed it from one thread (the sim's
 * clock-pumping thread, or a loadgen's completion path behind its own
 * lock).
 */

#ifndef MUSUITE_STATS_RECOVERY_H
#define MUSUITE_STATS_RECOVERY_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace musuite {

class GoodputTracker
{
  public:
    /** `bucket_ns` is the binning resolution; recovery instants are
     *  reported at bucket granularity. */
    explicit GoodputTracker(int64_t bucket_ns = 10'000'000)
        : bucketNs(bucket_ns > 0 ? bucket_ns : 1)
    {}

    /** Record one completion at instant `at_ns`; `good` marks it as
     *  counting toward goodput (ok and within deadline). */
    void
    record(int64_t at_ns, bool good)
    {
        if (at_ns < 0)
            return;
        const size_t bucket = size_t(at_ns / bucketNs);
        if (bucket >= buckets.size())
            buckets.resize(bucket + 1, 0);
        if (good)
            ++buckets[bucket];
    }

    /** Mean goodput over [from_ns, to_ns), in requests/sec. */
    double
    goodputQps(int64_t from_ns, int64_t to_ns) const
    {
        if (to_ns <= from_ns)
            return 0.0;
        uint64_t good = 0;
        const size_t first = size_t(from_ns / bucketNs);
        const size_t last = size_t((to_ns - 1) / bucketNs);
        for (size_t b = first; b <= last && b < buckets.size(); ++b)
            good += buckets[b];
        return double(good) * 1e9 / double(to_ns - from_ns);
    }

    /**
     * Time from `from_ns` (typically the fault-clear instant) until
     * *mean* goodput over a sliding `sustain_ns` window first reaches
     * `fraction * baseline_qps`. The window mean — not every single
     * bucket — is what must clear the bar, so stochastic arrival
     * processes (Poisson gaps straddling bucket edges) don't make
     * recovery unreachable. Returns -1 if it never recovers within
     * the recorded data. Bucket-granular.
     */
    int64_t
    recoveryTimeNs(int64_t from_ns, double baseline_qps,
                   double fraction, int64_t sustain_ns) const
    {
        if (baseline_qps <= 0.0)
            return -1;
        const size_t sustain_buckets = size_t(
            std::max<int64_t>(1, (sustain_ns + bucketNs - 1) /
                                     bucketNs));
        const double need = baseline_qps * fraction *
                            double(int64_t(sustain_buckets) *
                                   bucketNs) /
                            1e9;
        const size_t first = size_t(from_ns / bucketNs) +
                             (from_ns % bucketNs != 0 ? 1 : 0);
        for (size_t b = first; b + sustain_buckets <= buckets.size();
             ++b) {
            uint64_t good = 0;
            for (size_t s = 0; s < sustain_buckets; ++s)
                good += buckets[b + s];
            if (double(good) >= need)
                return int64_t(b) * bucketNs - from_ns;
        }
        return -1;
    }

    int64_t bucketWidthNs() const { return bucketNs; }
    size_t bucketCount() const { return buckets.size(); }

  private:
    int64_t bucketNs;
    /** buckets[i] = good completions in [i*bucketNs, (i+1)*bucketNs). */
    std::vector<uint64_t> buckets;
};

} // namespace musuite

#endif // MUSUITE_STATS_RECOVERY_H

/**
 * @file
 * Log-bucketed latency histogram (HDR-histogram style).
 *
 * µSuite's load testers must record full latency distributions — the
 * paper reports violin plots of medians and tails — without the memory
 * or precision pitfalls of fixed-width buckets. We bucket values by
 * octave with a configurable number of linear sub-buckets per octave,
 * giving a bounded relative error (~1.5% at the default 6 sub-bucket
 * bits) across the ns..minutes range.
 */

#ifndef MUSUITE_STATS_HISTOGRAM_H
#define MUSUITE_STATS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace musuite {

/** Quantile snapshot of a recorded distribution. */
struct DistributionSummary
{
    uint64_t count = 0;
    int64_t min = 0;
    int64_t p25 = 0;
    int64_t p50 = 0;
    int64_t p75 = 0;
    int64_t p90 = 0;
    int64_t p99 = 0;
    int64_t p999 = 0;
    int64_t max = 0;
    double mean = 0.0;

    /** One-line human-readable rendering using adaptive time units. */
    std::string toString() const;
};

/**
 * Accept/shed accounting for overload experiments: of everything
 * offered, what was explicitly shed (RESOURCE_EXHAUSTED), what failed
 * some other way, what completed — and of the completions, how many
 * landed inside the deadline (the goodput the paper's saturation
 * experiments care about, as opposed to raw throughput).
 */
struct ShedAcceptBreakdown
{
    uint64_t offered = 0;
    uint64_t completed = 0; //!< Responses with OK status.
    uint64_t shed = 0;      //!< Rejected with RESOURCE_EXHAUSTED.
    uint64_t failed = 0;    //!< Any other error.
    uint64_t goodput = 0;   //!< Completions within the deadline.

    double
    shedRate() const
    {
        return offered ? double(shed) / double(offered) : 0.0;
    }

    double
    goodputRate() const
    {
        return offered ? double(goodput) / double(offered) : 0.0;
    }

    /** One-line "offered/completed/shed/failed/goodput" rendering. */
    std::string toString() const;
};

/**
 * Single-writer histogram of non-negative int64 values (nanoseconds by
 * convention). Not internally synchronized: record into per-thread
 * instances and merge() at collection time.
 */
class Histogram
{
  public:
    /**
     * @param sub_bucket_bits Linear sub-buckets per octave = 2^bits;
     *        higher is more precise and bigger. 6 bits → ~1.5% error.
     */
    explicit Histogram(int sub_bucket_bits = 6);

    /** Record one value; negative values clamp to zero. */
    void record(int64_t value);

    /** Record a value count times. */
    void recordMany(int64_t value, uint64_t count);

    /** Add another histogram's contents into this one. */
    void merge(const Histogram &other);

    /** Remove all recorded values. */
    void reset();

    uint64_t count() const { return total; }
    int64_t minValue() const { return total ? lo : 0; }
    int64_t maxValue() const { return total ? hi : 0; }
    double mean() const;

    /**
     * Value at the given quantile in [0, 1]. Returns the representative
     * (midpoint) value of the bucket containing the quantile, clamped
     * to the observed min/max so exact-value distributions report
     * exactly.
     */
    int64_t valueAtQuantile(double q) const;

    /**
     * Recorded values <= `value`, at bucket granularity (the bucket's
     * relative error, ~1.5% at default precision, applies). This is
     * how goodput is computed post-hoc: record every completion, then
     * count the ones inside the deadline.
     */
    uint64_t countAtOrBelow(int64_t value) const;

    /** Standard summary (median, tails, mean...). */
    DistributionSummary summary() const;

    /**
     * Emit "bucket_midpoint_ns,count" CSV rows for non-empty buckets —
     * enough to redraw the paper's violin plots externally.
     */
    std::string toCsv() const;

  private:
    size_t bucketIndex(int64_t value) const;
    int64_t bucketMidpoint(size_t index) const;

    int subBucketBits;
    std::vector<uint64_t> buckets;
    uint64_t total = 0;
    int64_t lo = 0;
    int64_t hi = 0;
    double sum = 0.0;
};

} // namespace musuite

#endif // MUSUITE_STATS_HISTOGRAM_H

/**
 * @file
 * Implementation of the log-bucketed histogram.
 */

#include "stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "base/logging.h"
#include "base/time_util.h"

namespace musuite {

std::string
DistributionSummary::toString() const
{
    std::ostringstream out;
    out << "n=" << count
        << " min=" << formatNanos(min)
        << " p50=" << formatNanos(p50)
        << " p90=" << formatNanos(p90)
        << " p99=" << formatNanos(p99)
        << " p99.9=" << formatNanos(p999)
        << " max=" << formatNanos(max)
        << " mean=" << formatNanos(int64_t(mean));
    return out.str();
}

std::string
ShedAcceptBreakdown::toString() const
{
    std::ostringstream out;
    out << "offered=" << offered << " completed=" << completed
        << " shed=" << shed << " failed=" << failed
        << " goodput=" << goodput;
    return out.str();
}

Histogram::Histogram(int sub_bucket_bits)
    : subBucketBits(sub_bucket_bits)
{
    MUSUITE_CHECK(sub_bucket_bits >= 1 && sub_bucket_bits <= 12)
        << "sub-bucket bits out of range";
    const size_t sub_count = size_t(1) << subBucketBits;
    const size_t size = ((64 - subBucketBits) << subBucketBits) + sub_count;
    buckets.assign(size, 0);
}

size_t
Histogram::bucketIndex(int64_t value) const
{
    const uint64_t v = uint64_t(value);
    const uint64_t sub_count = uint64_t(1) << subBucketBits;
    if (v < sub_count)
        return size_t(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - subBucketBits;
    const size_t block = size_t(shift + 1) << subBucketBits;
    const size_t sub = size_t((v >> shift) - sub_count);
    return block + sub;
}

int64_t
Histogram::bucketMidpoint(size_t index) const
{
    const uint64_t sub_count = uint64_t(1) << subBucketBits;
    if (index < sub_count)
        return int64_t(index);
    const int shift = int(index >> subBucketBits) - 1;
    const uint64_t sub = index & (sub_count - 1);
    const uint64_t low = (sub_count + sub) << shift;
    const uint64_t width = uint64_t(1) << shift;
    return int64_t(low + width / 2);
}

void
Histogram::record(int64_t value)
{
    recordMany(value, 1);
}

void
Histogram::recordMany(int64_t value, uint64_t n)
{
    if (n == 0)
        return;
    if (value < 0)
        value = 0;
    if (total == 0) {
        lo = hi = value;
    } else {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
    }
    buckets[bucketIndex(value)] += n;
    total += n;
    sum += double(value) * double(n);
}

void
Histogram::merge(const Histogram &other)
{
    MUSUITE_CHECK(subBucketBits == other.subBucketBits)
        << "merging histograms with different precision";
    if (other.total == 0)
        return;
    if (total == 0) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    for (size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    total += other.total;
    sum += other.sum;
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    total = 0;
    lo = hi = 0;
    sum = 0.0;
}

double
Histogram::mean() const
{
    return total ? sum / double(total) : 0.0;
}

int64_t
Histogram::valueAtQuantile(double q) const
{
    if (total == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const uint64_t target =
        std::max<uint64_t>(1, uint64_t(std::ceil(q * double(total))));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        if (cumulative >= target)
            return std::clamp(bucketMidpoint(i), lo, hi);
    }
    return hi;
}

uint64_t
Histogram::countAtOrBelow(int64_t value) const
{
    if (total == 0 || value < 0)
        return 0;
    if (value >= hi)
        return total;
    const size_t limit = bucketIndex(value);
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= limit && i < buckets.size(); ++i)
        cumulative += buckets[i];
    return cumulative;
}

DistributionSummary
Histogram::summary() const
{
    DistributionSummary s;
    s.count = total;
    s.min = minValue();
    s.p25 = valueAtQuantile(0.25);
    s.p50 = valueAtQuantile(0.50);
    s.p75 = valueAtQuantile(0.75);
    s.p90 = valueAtQuantile(0.90);
    s.p99 = valueAtQuantile(0.99);
    s.p999 = valueAtQuantile(0.999);
    s.max = maxValue();
    s.mean = mean();
    return s;
}

std::string
Histogram::toCsv() const
{
    std::ostringstream out;
    out << "value_ns,count\n";
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i])
            out << bucketMidpoint(i) << "," << buckets[i] << "\n";
    }
    return out.str();
}

} // namespace musuite

/**
 * @file
 * Fixed-width text table and CSV emitters for benchmark reports. Every
 * fig* bench prints its rows through this so EXPERIMENTS.md can quote
 * outputs uniformly.
 */

#ifndef MUSUITE_STATS_TABLE_H
#define MUSUITE_STATS_TABLE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace musuite {

/**
 * A rectangular table of strings with a header row. Numeric cells are
 * formatted by the caller; the table only handles layout.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience for building a row cell-by-cell. */
    class RowBuilder
    {
      public:
        explicit RowBuilder(Table &table) : table(table) {}
        ~RowBuilder() { table.addRow(std::move(cells)); }

        RowBuilder &cell(const std::string &text);
        RowBuilder &cell(int64_t value);
        RowBuilder &cell(uint64_t value);
        RowBuilder &cell(double value, int precision = 2);
        /** Nanoseconds cell rendered with adaptive units. */
        RowBuilder &nanos(int64_t ns);

      private:
        Table &table;
        std::vector<std::string> cells;
    };

    RowBuilder row() { return RowBuilder(*this); }

    /** Aligned, padded text rendering. */
    void print(std::ostream &out) const;

    /** Comma-separated rendering including the header. */
    void printCsv(std::ostream &out) const;

    size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Print a "=== title ===" section banner. */
void printBanner(std::ostream &out, const std::string &title);

} // namespace musuite

#endif // MUSUITE_STATS_TABLE_H

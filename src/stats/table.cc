/**
 * @file
 * Implementation of the benchmark report table.
 */

#include "stats/table.h"

#include <algorithm>
#include <cstdio>

#include "base/logging.h"
#include "base/time_util.h"

namespace musuite {

Table::Table(std::vector<std::string> header)
    : header(std::move(header))
{
    MUSUITE_CHECK(!this->header.empty()) << "table needs at least 1 column";
}

void
Table::addRow(std::vector<std::string> row)
{
    MUSUITE_CHECK(row.size() == header.size())
        << "row width " << row.size() << " != header width "
        << header.size();
    rows.push_back(std::move(row));
}

Table::RowBuilder &
Table::RowBuilder::cell(const std::string &text)
{
    cells.push_back(text);
    return *this;
}

Table::RowBuilder &
Table::RowBuilder::cell(int64_t value)
{
    cells.push_back(std::to_string(value));
    return *this;
}

Table::RowBuilder &
Table::RowBuilder::cell(uint64_t value)
{
    cells.push_back(std::to_string(value));
    return *this;
}

Table::RowBuilder &
Table::RowBuilder::cell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    cells.push_back(buf);
    return *this;
}

Table::RowBuilder &
Table::RowBuilder::nanos(int64_t ns)
{
    cells.push_back(formatNanos(ns));
    return *this;
}

void
Table::print(std::ostream &out) const
{
    std::vector<size_t> widths(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << "\n";
    };

    emit_row(header);
    size_t rule = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(rule, '-') << "\n";
    for (const auto &row : rows)
        emit_row(row);
}

void
Table::printCsv(std::ostream &out) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << ",";
        }
        out << "\n";
    };
    emit_row(header);
    for (const auto &row : rows)
        emit_row(row);
}

void
printBanner(std::ostream &out, const std::string &title)
{
    out << "\n=== " << title << " ===\n";
}

} // namespace musuite

/**
 * @file
 * Implementation of user-based collaborative filtering.
 */

#include "ml/cf.h"

#include <algorithm>

namespace musuite {

CollaborativeFilter::CollaborativeFilter(SparseRatings ratings_in,
                                         CfOptions options_in)
    : ratings(std::move(ratings_in)), options(options_in),
      nmf(factorize(ratings, options_in.nmf))
{}

std::vector<UserNeighbor>
CollaborativeFilter::nearestUsers(uint32_t user) const
{
    std::vector<UserNeighbor> scored;
    if (user >= ratings.userCount())
        return scored;
    scored.reserve(ratings.userCount() - 1);
    const auto query_row = nmf.w.row(user);
    for (uint32_t other = 0; other < ratings.userCount(); ++other) {
        if (other == user)
            continue;
        if (ratings.userRatings(other).empty())
            continue; // Cold users carry no preference signal.
        scored.push_back(
            {other, vectorSimilarity(query_row, nmf.w.row(other),
                                     options.metric)});
    }
    const size_t keep = std::min(options.neighbors, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                      [](const UserNeighbor &a, const UserNeighbor &b) {
                          return a.similarity > b.similarity;
                      });
    scored.resize(keep);
    return scored;
}

double
CollaborativeFilter::predict(uint32_t user, uint32_t item) const
{
    if (user >= ratings.userCount() || item >= ratings.itemCount())
        return ratings.globalMean();

    // An observed rating is the ground truth; return it directly.
    if (const Rating *observed = ratings.find(user, item))
        return observed->value;

    const auto neighbors = nearestUsers(user);
    double weighted = 0.0;
    double weight = 0.0;
    for (const UserNeighbor &neighbor : neighbors) {
        if (neighbor.similarity <= 0.0)
            continue;
        // Use the neighbour's observed rating when present, else its
        // NMF-completed approximation.
        double value;
        if (const Rating *seen = ratings.find(neighbor.user, item))
            value = seen->value;
        else
            value = nmf.predict(neighbor.user, item);
        weighted += neighbor.similarity * value;
        weight += neighbor.similarity;
    }
    if (weight <= 0.0)
        return nmf.predict(user, item);
    return weighted / weight;
}

} // namespace musuite

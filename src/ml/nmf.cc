/**
 * @file
 * Implementation of masked multiplicative-update NMF.
 */

#include "ml/nmf.h"

#include <cmath>

#include "base/logging.h"
#include "base/rng.h"

namespace musuite {

namespace {

constexpr double epsilon = 1e-12;

double
rmseOf(const Matrix &w, const Matrix &h, const SparseRatings &ratings)
{
    if (ratings.observedCount() == 0)
        return 0.0;
    const size_t rank = w.cols();
    double sum = 0.0;
    for (const Rating &rating : ratings.observed()) {
        double pred = 0.0;
        for (size_t k = 0; k < rank; ++k)
            pred += w.at(rating.user, k) * h.at(k, rating.item);
        const double err = rating.value - pred;
        sum += err * err;
    }
    return std::sqrt(sum / double(ratings.observedCount()));
}

} // namespace

double
NmfModel::predict(uint32_t user, uint32_t item) const
{
    double pred = 0.0;
    for (size_t k = 0; k < w.cols(); ++k)
        pred += w.at(user, k) * h.at(k, item);
    return pred;
}

NmfModel
factorize(const SparseRatings &ratings, NmfOptions options)
{
    MUSUITE_CHECK(options.rank >= 1) << "rank must be >= 1";
    const size_t m = ratings.userCount();
    const size_t n = ratings.itemCount();
    const size_t r = options.rank;

    Rng rng(options.seed);
    NmfModel model;
    model.w = Matrix(m, r);
    model.h = Matrix(r, n);
    for (size_t u = 0; u < m; ++u) {
        for (size_t k = 0; k < r; ++k)
            model.w.at(u, k) = 0.1 + rng.nextDouble();
    }
    for (size_t k = 0; k < r; ++k) {
        for (size_t i = 0; i < n; ++i)
            model.h.at(k, i) = 0.1 + rng.nextDouble();
    }
    if (ratings.observedCount() == 0)
        return model;

    double previous_rmse = rmseOf(model.w, model.h, ratings);

    for (size_t iter = 0; iter < options.maxIterations; ++iter) {
        // --- W update: W ∘ ((M∘V)Hᵀ) / ((M∘WH)Hᵀ) -------------------
        Matrix w_num(m, r), w_den(m, r);
        for (const Rating &rating : ratings.observed()) {
            double pred = 0.0;
            for (size_t k = 0; k < r; ++k)
                pred += model.w.at(rating.user, k) *
                        model.h.at(k, rating.item);
            for (size_t k = 0; k < r; ++k) {
                const double hk = model.h.at(k, rating.item);
                w_num.at(rating.user, k) += rating.value * hk;
                w_den.at(rating.user, k) += pred * hk;
            }
        }
        for (size_t u = 0; u < m; ++u) {
            for (size_t k = 0; k < r; ++k) {
                model.w.at(u, k) *= w_num.at(u, k) /
                                    (w_den.at(u, k) + epsilon);
            }
        }

        // --- H update: H ∘ (Wᵀ(M∘V)) / (Wᵀ(M∘WH)) -------------------
        Matrix h_num(r, n), h_den(r, n);
        for (const Rating &rating : ratings.observed()) {
            double pred = 0.0;
            for (size_t k = 0; k < r; ++k)
                pred += model.w.at(rating.user, k) *
                        model.h.at(k, rating.item);
            for (size_t k = 0; k < r; ++k) {
                const double wk = model.w.at(rating.user, k);
                h_num.at(k, rating.item) += rating.value * wk;
                h_den.at(k, rating.item) += pred * wk;
            }
        }
        for (size_t k = 0; k < r; ++k) {
            for (size_t i = 0; i < n; ++i) {
                model.h.at(k, i) *= h_num.at(k, i) /
                                    (h_den.at(k, i) + epsilon);
            }
        }

        model.iterationsRun = iter + 1;
        const double rmse = rmseOf(model.w, model.h, ratings);
        if (previous_rmse > 0.0 &&
            (previous_rmse - rmse) / previous_rmse < options.tolerance) {
            previous_rmse = rmse;
            break;
        }
        previous_rmse = rmse;
    }
    model.finalRmse = previous_rmse;
    return model;
}

double
observedRmse(const NmfModel &model, const SparseRatings &ratings)
{
    return rmseOf(model.w, model.h, ratings);
}

} // namespace musuite

/**
 * @file
 * Implementation of sparse ratings and similarity metrics.
 */

#include "ml/matrix.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace musuite {

SparseRatings::SparseRatings(size_t users, size_t items,
                             std::vector<Rating> observed)
    : nUsers(users), nItems(items), entries(std::move(observed))
{
    for (const Rating &rating : entries) {
        MUSUITE_CHECK(rating.user < nUsers) << "user id out of range";
        MUSUITE_CHECK(rating.item < nItems) << "item id out of range";
    }
    std::sort(entries.begin(), entries.end(),
              [](const Rating &a, const Rating &b) {
                  return a.user < b.user ||
                         (a.user == b.user && a.item < b.item);
              });

    userOffsets.assign(nUsers + 1, 0);
    for (const Rating &rating : entries)
        userOffsets[rating.user + 1]++;
    for (size_t u = 0; u < nUsers; ++u)
        userOffsets[u + 1] += userOffsets[u];

    double sum = 0.0;
    for (const Rating &rating : entries)
        sum += rating.value;
    mean = entries.empty() ? 0.0 : sum / double(entries.size());
}

std::span<const Rating>
SparseRatings::userRatings(uint32_t user) const
{
    if (user >= nUsers)
        return {};
    const size_t begin = userOffsets[user];
    const size_t end = userOffsets[user + 1];
    return {entries.data() + begin, end - begin};
}

const Rating *
SparseRatings::find(uint32_t user, uint32_t item) const
{
    const auto ratings = userRatings(user);
    auto it = std::lower_bound(
        ratings.begin(), ratings.end(), item,
        [](const Rating &rating, uint32_t target) {
            return rating.item < target;
        });
    if (it != ratings.end() && it->item == item)
        return &*it;
    return nullptr;
}

const char *
similarityMetricName(SimilarityMetric metric)
{
    switch (metric) {
      case SimilarityMetric::Cosine:    return "cosine";
      case SimilarityMetric::Pearson:   return "pearson";
      case SimilarityMetric::Euclidean: return "euclidean";
    }
    return "?";
}

double
vectorSimilarity(std::span<const double> a, std::span<const double> b,
                 SimilarityMetric metric)
{
    MUSUITE_CHECK(a.size() == b.size()) << "similarity size mismatch";
    const size_t n = a.size();
    if (n == 0)
        return 0.0;

    switch (metric) {
      case SimilarityMetric::Cosine: {
        double dot = 0, na = 0, nb = 0;
        for (size_t i = 0; i < n; ++i) {
            dot += a[i] * b[i];
            na += a[i] * a[i];
            nb += b[i] * b[i];
        }
        if (na == 0 || nb == 0)
            return 0.0;
        return dot / (std::sqrt(na) * std::sqrt(nb));
      }
      case SimilarityMetric::Pearson: {
        double ma = 0, mb = 0;
        for (size_t i = 0; i < n; ++i) {
            ma += a[i];
            mb += b[i];
        }
        ma /= double(n);
        mb /= double(n);
        double cov = 0, va = 0, vb = 0;
        for (size_t i = 0; i < n; ++i) {
            const double da = a[i] - ma;
            const double db = b[i] - mb;
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        if (va == 0 || vb == 0)
            return 0.0;
        return cov / (std::sqrt(va) * std::sqrt(vb));
      }
      case SimilarityMetric::Euclidean: {
        // Map distance to (0, 1]: identical vectors score 1.
        double dist2 = 0;
        for (size_t i = 0; i < n; ++i) {
            const double d = a[i] - b[i];
            dist2 += d * d;
        }
        return 1.0 / (1.0 + std::sqrt(dist2));
      }
    }
    return 0.0;
}

} // namespace musuite

/**
 * @file
 * Dense and sparse matrices for the Recommend service's collaborative
 * filtering (the mlpack stand-in).
 */

#ifndef MUSUITE_ML_MATRIX_H
#define MUSUITE_ML_MATRIX_H

#include <cstdint>
#include <span>
#include <vector>

namespace musuite {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(size_t rows, size_t cols, double fill = 0.0)
        : nRows(rows), nCols(cols), cells(rows * cols, fill)
    {}

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }

    double &
    at(size_t r, size_t c)
    {
        return cells[r * nCols + c];
    }

    double
    at(size_t r, size_t c) const
    {
        return cells[r * nCols + c];
    }

    std::span<double>
    row(size_t r)
    {
        return {cells.data() + r * nCols, nCols};
    }

    std::span<const double>
    row(size_t r) const
    {
        return {cells.data() + r * nCols, nCols};
    }

    const std::vector<double> &data() const { return cells; }

  private:
    size_t nRows = 0;
    size_t nCols = 0;
    std::vector<double> cells;
};

/** One observed rating. */
struct Rating
{
    uint32_t user = 0;
    uint32_t item = 0;
    double value = 0.0;
};

/**
 * The sparsely populated user-item utility matrix V (paper §III-D):
 * observed {user, item, rating} tuples with per-user CSR access.
 */
class SparseRatings
{
  public:
    SparseRatings(size_t users, size_t items,
                  std::vector<Rating> observed);

    size_t userCount() const { return nUsers; }
    size_t itemCount() const { return nItems; }
    size_t observedCount() const { return entries.size(); }

    /** All observed tuples (training loop order). */
    const std::vector<Rating> &observed() const { return entries; }

    /** Observed ratings of one user (sorted by item). */
    std::span<const Rating> userRatings(uint32_t user) const;

    /** Rating of (user, item) if observed. */
    const Rating *find(uint32_t user, uint32_t item) const;

    /** Mean of all observed ratings. */
    double globalMean() const { return mean; }

  private:
    size_t nUsers;
    size_t nItems;
    std::vector<Rating> entries;     //!< Sorted by (user, item).
    std::vector<size_t> userOffsets; //!< CSR offsets, size nUsers+1.
    double mean = 0.0;
};

/** Similarity metrics for the neighbourhood algorithm. */
enum class SimilarityMetric {
    Cosine,
    Pearson,
    Euclidean,
};

const char *similarityMetricName(SimilarityMetric metric);

/** Similarity of two equal-length vectors under the given metric. */
double vectorSimilarity(std::span<const double> a,
                        std::span<const double> b,
                        SimilarityMetric metric);

} // namespace musuite

#endif // MUSUITE_ML_MATRIX_H

/**
 * @file
 * User-based collaborative filtering with a k-nearest-neighbour
 * neighbourhood (the mlpack allknn stand-in of paper §III-D).
 *
 * Offline, a leaf factorizes its shard of the utility matrix with NMF;
 * online, a {user, item} query finds the k users most similar to the
 * query user in latent-factor space (cosine/Pearson/Euclidean) and
 * predicts the rating as the similarity-weighted average of the
 * neighbours' (observed or NMF-completed) ratings for the item.
 */

#ifndef MUSUITE_ML_CF_H
#define MUSUITE_ML_CF_H

#include <vector>

#include "ml/matrix.h"
#include "ml/nmf.h"

namespace musuite {

struct CfOptions
{
    NmfOptions nmf;
    size_t neighbors = 10; //!< k in allknn.
    SimilarityMetric metric = SimilarityMetric::Cosine;
};

/** One neighbour of a query user. */
struct UserNeighbor
{
    uint32_t user = 0;
    double similarity = 0.0;
};

class CollaborativeFilter
{
  public:
    /** Train (sparse-matrix composition + factorization) offline. */
    CollaborativeFilter(SparseRatings ratings, CfOptions options = {});

    /**
     * Predict the rating user would give item via the neighbourhood
     * algorithm. Users/items outside the training range fall back to
     * the global mean (the paper restricts queries to users with at
     * least one rating, but a robust service must not crash).
     */
    double predict(uint32_t user, uint32_t item) const;

    /** The k most similar users (excluding the query user). */
    std::vector<UserNeighbor> nearestUsers(uint32_t user) const;

    const NmfModel &model() const { return nmf; }
    const SparseRatings &trainingData() const { return ratings; }

  private:
    SparseRatings ratings;
    CfOptions options;
    NmfModel nmf;
};

} // namespace musuite

#endif // MUSUITE_ML_CF_H

/**
 * @file
 * Non-negative matrix factorization of the sparse utility matrix.
 *
 * Recommend (paper §III-D) decomposes the m×n user-item rating matrix
 * V into non-negative W (m×r) and H (r×n) with V ≈ WH, where rank r is
 * the number of latent similarity concepts. We use multiplicative
 * updates (Lee & Seung) restricted to the observed entries — the
 * masked/weighted variant appropriate for recommendation, where
 * unobserved cells are *missing*, not zero — which keeps every factor
 * non-negative and monotonically decreases observed reconstruction
 * error.
 */

#ifndef MUSUITE_ML_NMF_H
#define MUSUITE_ML_NMF_H

#include <cstdint>

#include "ml/matrix.h"

namespace musuite {

struct NmfOptions
{
    size_t rank = 8;          //!< r: latent similarity concepts.
    size_t maxIterations = 60;
    double tolerance = 1e-5;  //!< Stop when relative RMSE improvement
                              //!< falls below this.
    uint64_t seed = 7;
};

struct NmfModel
{
    Matrix w; //!< m x r user-concept strengths.
    Matrix h; //!< r x n concept-item strengths.
    double finalRmse = 0.0;
    size_t iterationsRun = 0;

    /** Approximated rating W_u · H_:i. */
    double predict(uint32_t user, uint32_t item) const;
};

/** Factorize observed entries of V. */
NmfModel factorize(const SparseRatings &ratings, NmfOptions options = {});

/** RMSE of a model over the observed entries. */
double observedRmse(const NmfModel &model, const SparseRatings &ratings);

} // namespace musuite

#endif // MUSUITE_ML_NMF_H

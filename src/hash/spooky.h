/**
 * @file
 * 128-bit non-cryptographic hash in the style of Bob Jenkins'
 * SpookyHash V2, the hash µSuite's Router uses to spread keys across
 * memcached leaves. Re-implemented from scratch with the same
 * structure: a 4-lane "short" path for keys under 192 bytes (the common
 * case for cache keys — ~1 byte/cycle) and a 12-lane "long" path
 * (~3 bytes/cycle). Output quality (avalanche, bucket uniformity, low
 * collision rate) is validated by property tests rather than upstream
 * test vectors; Router only requires a fast, well-distributed hash.
 */

#ifndef MUSUITE_HASH_SPOOKY_H
#define MUSUITE_HASH_SPOOKY_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace musuite {

/** A 128-bit hash value. */
struct Hash128
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool
    operator==(const Hash128 &other) const
    {
        return lo == other.lo && hi == other.hi;
    }
};

class SpookyHash
{
  public:
    /**
     * Hash an arbitrary byte array.
     *
     * @param data Bytes to hash (any alignment, any length).
     * @param length Number of bytes.
     * @param seed1 First 64 bits of seed.
     * @param seed2 Second 64 bits of seed.
     */
    static Hash128 hash128(const void *data, size_t length,
                           uint64_t seed1 = 0, uint64_t seed2 = 0);

    /** First 64 bits of hash128. */
    static uint64_t
    hash64(const void *data, size_t length, uint64_t seed = 0)
    {
        return hash128(data, length, seed, seed).lo;
    }

    static Hash128
    hash128(std::string_view key, uint64_t seed1 = 0, uint64_t seed2 = 0)
    {
        return hash128(key.data(), key.size(), seed1, seed2);
    }

    static uint64_t
    hash64(std::string_view key, uint64_t seed = 0)
    {
        return hash64(key.data(), key.size(), seed);
    }

  private:
    /** Keys shorter than this take the 4-lane short path. */
    static constexpr size_t shortThreshold = 192;
    static constexpr uint64_t arbitraryConst = 0xDEADBEEFDEADBEEFull;

    static Hash128 shortHash(const void *data, size_t length,
                             uint64_t seed1, uint64_t seed2);
    static Hash128 longHash(const void *data, size_t length,
                            uint64_t seed1, uint64_t seed2);
};

/**
 * Map a hashed key to one of n shards. Uses the high 64 bits times n
 * shifted down (multiply-shift), which is unbiased for n << 2^64 and
 * avoids the modulo hot-spot of low-entropy low bits.
 */
inline uint32_t
shardForHash(const Hash128 &h, uint32_t n_shards)
{
    return uint32_t((__uint128_t(h.hi) * n_shards) >> 64);
}

/** Hash a key and map it to a shard in one call. */
inline uint32_t
shardForKey(std::string_view key, uint32_t n_shards)
{
    return shardForHash(SpookyHash::hash128(key), n_shards);
}

} // namespace musuite

#endif // MUSUITE_HASH_SPOOKY_H

/**
 * @file
 * SpookyHash-V2-style implementation. The mix networks follow the
 * published structure (rotate / add / xor schedules sized so every
 * input bit diffuses to every output bit within a few rounds); see the
 * property tests in tests/hash_test.cc for the avalanche and
 * distribution guarantees we actually rely on.
 */

#include "hash/spooky.h"

#include <cstring>

namespace musuite {

namespace {

inline uint64_t
rot64(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** Read up to 8 little-endian bytes, zero-padding the remainder. */
inline uint64_t
readPartial(const uint8_t *p, size_t n)
{
    uint64_t v = 0;
    std::memcpy(&v, p, n);
    return v;
}

inline uint64_t
read64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

/** 4-lane mix for the short path (applied every 32 bytes). */
inline void
shortMix(uint64_t &h0, uint64_t &h1, uint64_t &h2, uint64_t &h3)
{
    h2 = rot64(h2, 50); h2 += h3; h0 ^= h2;
    h3 = rot64(h3, 52); h3 += h0; h1 ^= h3;
    h0 = rot64(h0, 30); h0 += h1; h2 ^= h0;
    h1 = rot64(h1, 41); h1 += h2; h3 ^= h1;
    h2 = rot64(h2, 54); h2 += h3; h0 ^= h2;
    h3 = rot64(h3, 48); h3 += h0; h1 ^= h3;
    h0 = rot64(h0, 38); h0 += h1; h2 ^= h0;
    h1 = rot64(h1, 37); h1 += h2; h3 ^= h1;
    h2 = rot64(h2, 62); h2 += h3; h0 ^= h2;
    h3 = rot64(h3, 34); h3 += h0; h1 ^= h3;
    h0 = rot64(h0, 5);  h0 += h1; h2 ^= h0;
    h1 = rot64(h1, 36); h1 += h2; h3 ^= h1;
}

/** 4-lane finalization for the short path. */
inline void
shortEnd(uint64_t &h0, uint64_t &h1, uint64_t &h2, uint64_t &h3)
{
    h3 ^= h2; h2 = rot64(h2, 15); h3 += h2;
    h0 ^= h3; h3 = rot64(h3, 52); h0 += h3;
    h1 ^= h0; h0 = rot64(h0, 26); h1 += h0;
    h2 ^= h1; h1 = rot64(h1, 51); h2 += h1;
    h3 ^= h2; h2 = rot64(h2, 28); h3 += h2;
    h0 ^= h3; h3 = rot64(h3, 9);  h0 += h3;
    h1 ^= h0; h0 = rot64(h0, 47); h1 += h0;
    h2 ^= h1; h1 = rot64(h1, 54); h2 += h1;
    h3 ^= h2; h2 = rot64(h2, 32); h3 += h2;
    h0 ^= h3; h3 = rot64(h3, 25); h0 += h3;
    h1 ^= h0; h0 = rot64(h0, 63); h1 += h0;
}

/** 12-lane mix for the long path (applied every 96 bytes). */
inline void
longMix(const uint64_t *data, uint64_t *s)
{
    s[0] += data[0];  s[2] ^= s[10]; s[11] ^= s[0];
    s[0] = rot64(s[0], 11);  s[11] += s[1];
    s[1] += data[1];  s[3] ^= s[11]; s[0] ^= s[1];
    s[1] = rot64(s[1], 32);  s[0] += s[2];
    s[2] += data[2];  s[4] ^= s[0];  s[1] ^= s[2];
    s[2] = rot64(s[2], 43);  s[1] += s[3];
    s[3] += data[3];  s[5] ^= s[1];  s[2] ^= s[3];
    s[3] = rot64(s[3], 31);  s[2] += s[4];
    s[4] += data[4];  s[6] ^= s[2];  s[3] ^= s[4];
    s[4] = rot64(s[4], 17);  s[3] += s[5];
    s[5] += data[5];  s[7] ^= s[3];  s[4] ^= s[5];
    s[5] = rot64(s[5], 28);  s[4] += s[6];
    s[6] += data[6];  s[8] ^= s[4];  s[5] ^= s[6];
    s[6] = rot64(s[6], 39);  s[5] += s[7];
    s[7] += data[7];  s[9] ^= s[5];  s[6] ^= s[7];
    s[7] = rot64(s[7], 57);  s[6] += s[8];
    s[8] += data[8];  s[10] ^= s[6]; s[7] ^= s[8];
    s[8] = rot64(s[8], 55);  s[7] += s[9];
    s[9] += data[9];  s[11] ^= s[7]; s[8] ^= s[9];
    s[9] = rot64(s[9], 54);  s[8] += s[10];
    s[10] += data[10]; s[0] ^= s[8]; s[9] ^= s[10];
    s[10] = rot64(s[10], 22); s[9] += s[11];
    s[11] += data[11]; s[1] ^= s[9]; s[10] ^= s[11];
    s[11] = rot64(s[11], 46); s[10] += s[0];
}

/** One round of 12-lane finalization. */
inline void
endPartial(uint64_t *h)
{
    h[11] += h[1]; h[2] ^= h[11]; h[1] = rot64(h[1], 44);
    h[0]  += h[2]; h[3] ^= h[0];  h[2] = rot64(h[2], 15);
    h[1]  += h[3]; h[4] ^= h[1];  h[3] = rot64(h[3], 34);
    h[2]  += h[4]; h[5] ^= h[2];  h[4] = rot64(h[4], 21);
    h[3]  += h[5]; h[6] ^= h[3];  h[5] = rot64(h[5], 38);
    h[4]  += h[6]; h[7] ^= h[4];  h[6] = rot64(h[6], 33);
    h[5]  += h[7]; h[8] ^= h[5];  h[7] = rot64(h[7], 10);
    h[6]  += h[8]; h[9] ^= h[6];  h[8] = rot64(h[8], 13);
    h[7]  += h[9]; h[10] ^= h[7]; h[9] = rot64(h[9], 38);
    h[8]  += h[10]; h[11] ^= h[8]; h[10] = rot64(h[10], 53);
    h[9]  += h[11]; h[0] ^= h[9];  h[11] = rot64(h[11], 42);
    h[10] += h[0];  h[1] ^= h[10]; h[0] = rot64(h[0], 54);
}

inline void
longEnd(const uint64_t *data, uint64_t *h)
{
    for (int i = 0; i < 12; ++i)
        h[i] += data[i];
    endPartial(h);
    endPartial(h);
    endPartial(h);
}

} // namespace

Hash128
SpookyHash::shortHash(const void *data, size_t length, uint64_t seed1,
                      uint64_t seed2)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    size_t remaining = length;

    uint64_t a = seed1;
    uint64_t b = seed2;
    uint64_t c = arbitraryConst;
    uint64_t d = arbitraryConst;

    // Consume 32-byte blocks.
    while (remaining >= 32) {
        c += read64(p);
        d += read64(p + 8);
        shortMix(a, b, c, d);
        a += read64(p + 16);
        b += read64(p + 24);
        p += 32;
        remaining -= 32;
    }

    // Consume a trailing 16-byte block if present.
    if (remaining >= 16) {
        c += read64(p);
        d += read64(p + 8);
        shortMix(a, b, c, d);
        p += 16;
        remaining -= 16;
    }

    // Fold the final 0..15 bytes plus the total length into d's top.
    d += uint64_t(length) << 56;
    if (remaining >= 8) {
        c += read64(p);
        if (remaining > 8)
            d += readPartial(p + 8, remaining - 8);
    } else if (remaining > 0) {
        c += readPartial(p, remaining);
    } else {
        c += arbitraryConst;
        d += arbitraryConst;
    }
    shortEnd(a, b, c, d);
    return Hash128{a, b};
}

Hash128
SpookyHash::longHash(const void *data, size_t length, uint64_t seed1,
                     uint64_t seed2)
{
    constexpr size_t block = 96; // 12 lanes x 8 bytes.
    const uint8_t *p = static_cast<const uint8_t *>(data);
    size_t remaining = length;

    uint64_t h[12];
    h[0] = h[3] = h[6] = h[9] = seed1;
    h[1] = h[4] = h[7] = h[10] = seed2;
    h[2] = h[5] = h[8] = h[11] = arbitraryConst;

    uint64_t lanes[12];
    while (remaining >= block) {
        std::memcpy(lanes, p, block);
        longMix(lanes, h);
        p += block;
        remaining -= block;
    }

    // Zero-pad the final partial block; record length in the pad byte.
    uint8_t tail[block] = {};
    std::memcpy(tail, p, remaining);
    tail[block - 1] = uint8_t(remaining);
    std::memcpy(lanes, tail, block);
    longEnd(lanes, h);
    return Hash128{h[0], h[1]};
}

Hash128
SpookyHash::hash128(const void *data, size_t length, uint64_t seed1,
                    uint64_t seed2)
{
    if (length < shortThreshold)
        return shortHash(data, length, seed1, seed2);
    return longHash(data, length, seed1, seed2);
}

} // namespace musuite

/**
 * @file
 * Implementation of the per-service deployments.
 */

#include "harness/deployment.h"

#include <fstream>
#include <sys/utsname.h>
#include <thread>

#include "base/logging.h"
#include "services/hdsearch/leaf.h"
#include "services/hdsearch/midtier.h"
#include "services/hdsearch/proto.h"
#include "services/recommend/leaf.h"
#include "services/recommend/midtier.h"
#include "services/recommend/proto.h"
#include "services/router/leaf.h"
#include "services/router/proto.h"
#include "services/setalgebra/leaf.h"
#include "services/setalgebra/midtier.h"
#include "services/setalgebra/proto.h"

namespace musuite {

const char *
serviceName(ServiceKind kind)
{
    switch (kind) {
      case ServiceKind::HdSearch:   return "HDSearch";
      case ServiceKind::Router:     return "Router";
      case ServiceKind::SetAlgebra: return "Set Algebra";
      case ServiceKind::Recommend:  return "Recommend";
    }
    return "?";
}

std::vector<ServiceKind>
allServices()
{
    return {ServiceKind::HdSearch, ServiceKind::Router,
            ServiceKind::SetAlgebra, ServiceKind::Recommend};
}

void
ServiceDeployment::killLeaf(size_t i)
{
    MUSUITE_CHECK(i < leafServers.size()) << "no such leaf";
    leafServers[i]->stop();
}

namespace {

/** Shared wiring: start leaf servers and dial them. */
struct TierWiring
{
    /**
     * Start `count` leaf servers using `register_leaf(i, server)` to
     * attach handlers, then open one client channel to each.
     */
    static void
    buildLeaves(const DeploymentOptions &options, uint32_t count,
                const std::function<void(uint32_t, rpc::Server &)>
                    &register_leaf,
                std::vector<std::unique_ptr<rpc::Server>> &servers,
                std::vector<std::shared_ptr<rpc::Channel>> &channels)
    {
        for (uint32_t i = 0; i < count; ++i) {
            rpc::ServerOptions server_options = options.leafServer;
            server_options.name = "leaf" + std::to_string(i);
            auto server = std::make_unique<rpc::Server>(server_options);
            register_leaf(i, *server);
            server->start();

            rpc::ClientOptions client_options = options.midToLeafClient;
            client_options.name = "m2l" + std::to_string(i);
            channels.push_back(std::make_shared<rpc::RpcClient>(
                server->port(), client_options));
            servers.push_back(std::move(server));
        }
    }

    static std::unique_ptr<rpc::Server>
    buildMidTier(const DeploymentOptions &options)
    {
        rpc::ServerOptions server_options = options.midTierServer;
        if (server_options.name == "mid")
            server_options.name = "midtier";
        return std::make_unique<rpc::Server>(server_options);
    }
};

// --------------------------------------------------------------------
// HDSearch
// --------------------------------------------------------------------

class HdSearchDeployment : public ServiceDeployment
{
  public:
    explicit HdSearchDeployment(const DeploymentOptions &options)
        : options(options), dataset(options.gmm)
    {
        serviceKind = ServiceKind::HdSearch;
        auto built = hdsearch::buildShardedIndex(
            dataset.vectors(), options.leafShards, options.lsh);

        std::vector<FeatureStore> &shards = built.leafShards;
        TierWiring::buildLeaves(
            options, options.leafShards,
            [&](uint32_t i, rpc::Server &server) {
                leaves.push_back(std::make_unique<hdsearch::Leaf>(
                    std::move(shards[i])));
                leaves.back()->registerWith(server);
            },
            leafServers, leafChannels);

        logic = std::make_unique<hdsearch::MidTier>(
            std::move(built.midTierIndex), leafChannels,
            options.midTierFanout);
        midTier = TierWiring::buildMidTier(options);
        logic->registerWith(*midTier);
        midTier->start();
    }

    ~HdSearchDeployment() override { shutdownTiers(); }

    uint32_t
    frontEndMethod() const override
    {
        return hdsearch::kNearestNeighbors;
    }

    std::string
    sampleRequestBody(Rng &rng) override
    {
        hdsearch::NNQuery query;
        query.features = dataset.sampleQuery(rng);
        query.k = options.searchK;
        return encodeMessage(query);
    }

    bool
    validateResponse(std::string_view payload) const override
    {
        hdsearch::NNResponse response;
        return decodeMessage(payload, response);
    }

    bool
    responseDegraded(std::string_view payload) const override
    {
        hdsearch::NNResponse response;
        return decodeMessage(payload, response) && response.degraded;
    }

  private:
    void
    shutdownTiers()
    {
        if (midTier)
            midTier->stop();
        leafChannels.clear();
        for (auto &server : leafServers)
            server->stop();
    }

    DeploymentOptions options;
    GmmDataset dataset;
    std::vector<std::unique_ptr<hdsearch::Leaf>> leaves;
    std::unique_ptr<hdsearch::MidTier> logic;
};

// --------------------------------------------------------------------
// Router
// --------------------------------------------------------------------

class RouterDeployment : public ServiceDeployment
{
  public:
    explicit RouterDeployment(const DeploymentOptions &options)
        : options(options), workload(options.kv)
    {
        serviceKind = ServiceKind::Router;
        const uint32_t shards = options.routerDefaultShards
                                    ? 16
                                    : options.leafShards;

        TierWiring::buildLeaves(
            options, shards,
            [&](uint32_t, rpc::Server &server) {
                leaves.push_back(std::make_unique<router::Leaf>());
                leaves.back()->registerWith(server);
            },
            leafServers, leafChannels);

        router::MidTierOptions router_options = options.routerMidTier;
        if (router_options.fanout.leg.plain() &&
            router_options.fanout.quorumFraction >= 1.0) {
            // Not customised — inherit the deployment-wide policy.
            router_options.fanout = options.midTierFanout;
        }
        logic = std::make_unique<router::MidTier>(leafChannels,
                                                 router_options);
        midTier = TierWiring::buildMidTier(options);
        logic->registerWith(*midTier);
        midTier->start();

        prepopulate();
    }

    ~RouterDeployment() override { shutdownTiers(); }

    uint32_t frontEndMethod() const override { return router::kRoute; }

    std::string
    sampleRequestBody(Rng &rng) override
    {
        const KvOp op = workload.sampleOp(rng);
        router::KvRequest request;
        request.op = op.isGet ? router::Op::Get : router::Op::Set;
        request.key = op.key;
        request.value = op.value;
        return encodeMessage(request);
    }

    bool
    validateResponse(std::string_view payload) const override
    {
        router::KvReply reply;
        return decodeMessage(payload, reply);
    }

    bool
    responseDegraded(std::string_view payload) const override
    {
        router::KvReply reply;
        return decodeMessage(payload, reply) && reply.degraded;
    }

    router::MidTier &routerLogic() { return *logic; }
    router::Leaf &leafObject(size_t i) { return *leaves[i]; }
    const KvWorkload &kvWorkload() const { return workload; }

  private:
    void
    prepopulate()
    {
        // Seed the replicated stores directly (we own the leaf
        // objects) so gets under the Zipf workload mostly hit, as
        // they would in a warmed-up memcached fleet.
        const size_t count =
            std::min<size_t>(options.prepopulateKeys,
                             workload.keyCount());
        for (size_t i = 0; i < count; ++i) {
            const std::string key = workload.keyAt(i);
            const std::string value = workload.valueFor(key);
            for (uint32_t leaf : logic->replicaPool(key))
                leaves[leaf]->cache().set(key, value);
        }
    }

    void
    shutdownTiers()
    {
        if (midTier)
            midTier->stop();
        leafChannels.clear();
        for (auto &server : leafServers)
            server->stop();
    }

    DeploymentOptions options;
    KvWorkload workload;
    std::vector<std::unique_ptr<router::Leaf>> leaves;
    std::unique_ptr<router::MidTier> logic;
};

// --------------------------------------------------------------------
// Set Algebra
// --------------------------------------------------------------------

class SetAlgebraDeployment : public ServiceDeployment
{
  public:
    explicit SetAlgebraDeployment(const DeploymentOptions &options)
        : options(options), corpus(options.corpus)
    {
        serviceKind = ServiceKind::SetAlgebra;

        // Shard documents round-robin, keeping global doc ids.
        const uint32_t shards = options.leafShards;
        std::vector<std::vector<std::vector<uint32_t>>> shard_docs(
            shards);
        std::vector<std::vector<uint32_t>> shard_ids(shards);
        const auto &docs = corpus.documents();
        for (uint32_t d = 0; d < docs.size(); ++d) {
            shard_docs[d % shards].push_back(docs[d]);
            shard_ids[d % shards].push_back(d);
        }

        TierWiring::buildLeaves(
            options, shards,
            [&](uint32_t i, rpc::Server &server) {
                leaves.push_back(std::make_unique<setalgebra::Leaf>(
                    std::make_unique<InvertedIndex>(
                        shard_docs[i], shard_ids[i],
                        options.stopTerms)));
                leaves.back()->registerWith(server);
            },
            leafServers, leafChannels);

        logic = std::make_unique<setalgebra::MidTier>(
            leafChannels, options.midTierFanout);
        midTier = TierWiring::buildMidTier(options);
        logic->registerWith(*midTier);
        midTier->start();
    }

    ~SetAlgebraDeployment() override { shutdownTiers(); }

    uint32_t
    frontEndMethod() const override
    {
        return setalgebra::kSearch;
    }

    std::string
    sampleRequestBody(Rng &rng) override
    {
        setalgebra::SearchQuery query;
        query.terms = corpus.sampleQuery(rng);
        return encodeMessage(query);
    }

    bool
    validateResponse(std::string_view payload) const override
    {
        setalgebra::PostingReply reply;
        return decodeMessage(payload, reply);
    }

    bool
    responseDegraded(std::string_view payload) const override
    {
        setalgebra::PostingReply reply;
        return decodeMessage(payload, reply) && reply.degraded;
    }

    const TextCorpus &textCorpus() const { return corpus; }

  private:
    void
    shutdownTiers()
    {
        if (midTier)
            midTier->stop();
        leafChannels.clear();
        for (auto &server : leafServers)
            server->stop();
    }

    DeploymentOptions options;
    TextCorpus corpus;
    std::vector<std::unique_ptr<setalgebra::Leaf>> leaves;
    std::unique_ptr<setalgebra::MidTier> logic;
};

// --------------------------------------------------------------------
// Recommend
// --------------------------------------------------------------------

class RecommendDeployment : public ServiceDeployment
{
  public:
    explicit RecommendDeployment(const DeploymentOptions &options)
        : options(options),
          dataset(makeRatingsDataset(options.ratings))
    {
        serviceKind = ServiceKind::Recommend;
        MUSUITE_CHECK(!dataset.heldOutQueries.empty())
            << "ratings data set produced no held-out queries";

        std::vector<SparseRatings> shards = recommend::shardRatings(
            dataset.ratings, options.leafShards);

        TierWiring::buildLeaves(
            options, options.leafShards,
            [&](uint32_t i, rpc::Server &server) {
                leaves.push_back(std::make_unique<recommend::Leaf>(
                    std::move(shards[i])));
                leaves.back()->registerWith(server);
            },
            leafServers, leafChannels);

        logic = std::make_unique<recommend::MidTier>(
            leafChannels, options.midTierFanout);
        midTier = TierWiring::buildMidTier(options);
        logic->registerWith(*midTier);
        midTier->start();
    }

    ~RecommendDeployment() override { shutdownTiers(); }

    uint32_t frontEndMethod() const override { return recommend::kPredict; }

    std::string
    sampleRequestBody(Rng &rng) override
    {
        // Always query "empty" utility-matrix cells (never training
        // data), per the paper's load generator.
        const auto &pair = dataset.heldOutQueries[rng.nextBounded(
            dataset.heldOutQueries.size())];
        recommend::RatingQuery query;
        query.user = pair.first;
        query.item = pair.second;
        return encodeMessage(query);
    }

    bool
    validateResponse(std::string_view payload) const override
    {
        recommend::RatingReply reply;
        return decodeMessage(payload, reply);
    }

    bool
    responseDegraded(std::string_view payload) const override
    {
        recommend::RatingReply reply;
        return decodeMessage(payload, reply) && reply.degraded;
    }

  private:
    void
    shutdownTiers()
    {
        if (midTier)
            midTier->stop();
        leafChannels.clear();
        for (auto &server : leafServers)
            server->stop();
    }

    DeploymentOptions options;
    RatingsDataset dataset;
    std::vector<std::unique_ptr<recommend::Leaf>> leaves;
    std::unique_ptr<recommend::MidTier> logic;
};

} // namespace

std::unique_ptr<ServiceDeployment>
ServiceDeployment::create(ServiceKind kind,
                          const DeploymentOptions &options)
{
    switch (kind) {
      case ServiceKind::HdSearch:
        return std::make_unique<HdSearchDeployment>(options);
      case ServiceKind::Router:
        return std::make_unique<RouterDeployment>(options);
      case ServiceKind::SetAlgebra:
        return std::make_unique<SetAlgebraDeployment>(options);
      case ServiceKind::Recommend:
        return std::make_unique<RecommendDeployment>(options);
    }
    MUSUITE_PANIC() << "unknown service kind";
    return nullptr;
}

void
printEnvironmentBanner(std::ostream &out)
{
    utsname names{};
    uname(&names);

    std::string model = "unknown";
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        if (line.rfind("model name", 0) == 0) {
            const size_t colon = line.find(':');
            if (colon != std::string::npos)
                model = line.substr(colon + 2);
            break;
        }
    }

    out << "--- environment (paper Table II analogue) ---\n"
        << "processor:    " << model << "\n"
        << "hw threads:   " << std::thread::hardware_concurrency()
        << "\n"
        << "kernel:       " << names.sysname << " " << names.release
        << "\n"
        << "network:      loopback TCP (all tiers on one host)\n"
        << "---------------------------------------------\n";
}

} // namespace musuite

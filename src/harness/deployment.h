/**
 * @file
 * Full-service deployment: leaves + mid-tier wired over loopback TCP
 * (or in-process channels), matching the paper's experimental set-up
 * (§V): a load generator, one mid-tier microservice, and a sharded
 * leaf microservice — four-way sharded for HDSearch / Set Algebra /
 * Recommend, 16-way with three replicas for Router.
 *
 * Deployments are the loopback-TCP binding of the Clock/transport
 * seam: servers and clients here run threads and epoll, so they bind
 * the real clock (construct deployments with no ambient-clock
 * override). Deterministic whole-topology scenarios belong on the
 * simulated binding instead (simkernel/sim_transport.h).
 */

#ifndef MUSUITE_HARNESS_DEPLOYMENT_H
#define MUSUITE_HARNESS_DEPLOYMENT_H

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "dataset/datasets.h"
#include "index/lsh.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "services/common/fanout.h"
#include "services/router/midtier.h"

namespace musuite {

/** The four µSuite services. */
enum class ServiceKind {
    HdSearch,
    Router,
    SetAlgebra,
    Recommend,
};

const char *serviceName(ServiceKind kind);
std::vector<ServiceKind> allServices();

/** Deployment-wide knobs with paper-like defaults scaled to one box. */
struct DeploymentOptions
{
    uint32_t leafShards = 4;   //!< Router overrides to 16 by default.
    bool routerDefaultShards = true; //!< Apply the 16-way override.

    // Field-by-field (not positional aggregate init) so growing
    // ServerOptions doesn't churn or silently reorder these.
    rpc::ServerOptions midTierServer = [] {
        rpc::ServerOptions options;
        options.workerThreads = 4;
        options.name = "mid";
        return options;
    }();
    rpc::ServerOptions leafServer = [] {
        rpc::ServerOptions options;
        options.workerThreads = 2;
        options.name = "leaf";
        return options;
    }();
    rpc::ClientOptions midToLeafClient{
        /*connections=*/1, /*completionThreads=*/1,
        /*blockingPoll=*/true, /*name=*/"mid2leaf"};

    /** Data-set scales (defaults sized for a small machine; the fig*
     *  benches expose flags to restore paper scale). */
    GmmOptions gmm{/*numVectors=*/4000, /*dimension=*/128,
                   /*clusters=*/32, /*clusterStddev=*/0.15,
                   /*spaceScale=*/1.0, /*seed=*/11};
    LshParams lsh{/*numTables=*/8, /*hashesPerTable=*/10,
                  /*bucketWidth=*/4.0f, /*multiProbes=*/8, /*seed=*/42};
    uint32_t searchK = 4;

    CorpusOptions corpus{/*numDocuments=*/8000, /*vocabulary=*/8000,
                         /*zipfExponent=*/1.05, /*meanDocLength=*/80,
                         /*seed=*/13};
    size_t stopTerms = 16;

    RatingsOptions ratings{/*users=*/240, /*items=*/200,
                           /*meanRatingsPerUser=*/15, /*latentRank=*/6,
                           /*noiseStddev=*/0.2, /*seed=*/17};

    KvWorkloadOptions kv{/*numKeys=*/20000, /*valueBytes=*/128,
                         /*zipfExponent=*/0.99, /*getFraction=*/0.5,
                         /*seed=*/19};
    router::MidTierOptions routerMidTier{/*replicas=*/3, /*seed=*/23,
                                         /*fanout=*/{}};
    size_t prepopulateKeys = 5000;

    /**
     * Mid-tier fan-out resilience policy (per-leg deadline / retries /
     * hedging plus the quorum fraction). Defaults keep the historical
     * behaviour: wait for every leg, no per-leg deadline. Router also
     * picks this up unless routerMidTier.fanout was set explicitly.
     */
    FanoutPolicy midTierFanout;

    uint64_t seed = 1;
};

/**
 * One running service: every tier in this process, leaves reachable
 * from the mid-tier over loopback TCP.
 */
class ServiceDeployment
{
  public:
    virtual ~ServiceDeployment() = default;

    /** Bring up the requested service. Blocks until ready. */
    static std::unique_ptr<ServiceDeployment> create(
        ServiceKind kind, const DeploymentOptions &options);

    ServiceKind kind() const { return serviceKind; }

    /** Mid-tier listening port; front-end clients dial this. */
    uint16_t midTierPort() const { return midTier->port(); }

    /** Method id a front-end uses against the mid-tier. */
    virtual uint32_t frontEndMethod() const = 0;

    /** Draw one realistic request body for this service. */
    virtual std::string sampleRequestBody(Rng &rng) = 0;

    /**
     * Validate a response payload for basic shape (used by load
     * generators to classify success).
     */
    virtual bool validateResponse(std::string_view payload) const = 0;

    /**
     * True if a (valid) response payload carries the service's
     * degraded/partial-result flag.
     */
    virtual bool responseDegraded(std::string_view payload) const = 0;

    rpc::Server &midTierServer() { return *midTier; }
    size_t leafCount() const { return leafServers.size(); }
    rpc::Server &leafServer(size_t i) { return *leafServers[i]; }

    /**
     * Mid-tier's channel to leaf `i` — exposed so experiments can
     * install a rpc::FaultInjector or inspect client stats.
     */
    const std::shared_ptr<rpc::Channel> &leafChannel(size_t i)
    {
        return leafChannels.at(i);
    }

    /** Kill one leaf server (fault-injection experiments). */
    void killLeaf(size_t i);

  protected:
    ServiceKind serviceKind;
    std::unique_ptr<rpc::Server> midTier;
    std::vector<std::unique_ptr<rpc::Server>> leafServers;
    std::vector<std::shared_ptr<rpc::Channel>> leafChannels;
};

/** Print the Table II-style environment banner. */
void printEnvironmentBanner(std::ostream &out);

} // namespace musuite

#endif // MUSUITE_HARNESS_DEPLOYMENT_H

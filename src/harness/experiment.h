/**
 * @file
 * Characterization windows: run a load against a deployed service and
 * collect every signal the paper's figures need — latency
 * distributions, syscall counts, OS-overhead breakdowns, context
 * switches, and lock-contention (HITM-proxy) events.
 */

#ifndef MUSUITE_HARNESS_EXPERIMENT_H
#define MUSUITE_HARNESS_EXPERIMENT_H

#include <array>

#include "harness/deployment.h"
#include "loadgen/loadgen.h"
#include "ostrace/ostrace.h"
#include "ostrace/rusage.h"
#include "ostrace/syscalls.h"

namespace musuite {

struct WindowOptions
{
    double qps = 1000.0;
    int64_t durationNs = 1'000'000'000;
    uint64_t seed = 1;
    rpc::ClientOptions frontEndClient{
        /*connections=*/2, /*completionThreads=*/1,
        /*blockingPoll=*/true, /*name=*/"frontend"};
};

/** Everything measured over one open-loop window. */
struct WindowReport
{
    LoadResult load;
    SyscallSnapshot syscalls{};           //!< Deltas over the window.
    ContextSwitches contextSwitches;      //!< Deltas over the window.
    uint64_t hitmEvents = 0;              //!< Contended acquisitions.
    uint64_t futexWaits = 0;
    uint64_t futexWakes = 0;
    std::array<Histogram, numOsCategories> osBreakdown{
        Histogram(4), Histogram(4), Histogram(4), Histogram(4),
        Histogram(4), Histogram(4), Histogram(4), Histogram(4)};

    /** Syscall invocations per completed query (Figs. 11-14 y-axis). */
    double
    syscallsPerQuery(Sys sys) const
    {
        if (load.completed == 0)
            return 0.0;
        return double(syscalls[size_t(sys)]) / double(load.completed);
    }
};

/**
 * Drive the deployment open loop at the given offered load and return
 * the full report. Counters are reset at window start, snapshotted at
 * window end.
 */
WindowReport runOpenLoopWindow(ServiceDeployment &deployment,
                               const WindowOptions &options);

/**
 * Closed-loop saturation throughput for a deployment (Fig. 9),
 * sweeping synchronous front-end workers until QPS plateaus.
 */
double measureSaturation(ServiceDeployment &deployment,
                         int max_workers = 32,
                         int64_t per_step_ns = 400'000'000);

} // namespace musuite

#endif // MUSUITE_HARNESS_EXPERIMENT_H

/**
 * @file
 * Implementation of the characterization windows.
 */

#include "harness/experiment.h"

#include "ostrace/sync.h"

namespace musuite {

WindowReport
runOpenLoopWindow(ServiceDeployment &deployment,
                  const WindowOptions &options)
{
    rpc::RpcClient client(deployment.midTierPort(),
                          options.frontEndClient);
    Rng request_rng(options.seed ^ 0xF00DF00Dull);

    // Window-edge snapshots: reset what is resettable, snapshot the
    // rest.
    resetSyscalls();
    resetContentionStats();
    (void)osTrace().collect(); // Drop pre-window samples.
    const ContextSwitches cs_before = sampleContextSwitches();
    const SyscallSnapshot sys_before = snapshotSyscalls();

    OpenLoopLoadGen::Options load_options;
    load_options.qps = options.qps;
    load_options.durationNs = options.durationNs;
    load_options.seed = options.seed;
    OpenLoopLoadGen generator(load_options);

    const uint32_t method = deployment.frontEndMethod();
    LoadResult load = generator.run(
        [&](uint64_t, std::function<void(RequestOutcome)> done) {
            client.call(method, deployment.sampleRequestBody(request_rng),
                        [&deployment, done = std::move(done)](
                            const Status &status,
                            std::string_view payload) {
                            const bool ok =
                                status.isOk() &&
                                deployment.validateResponse(payload);
                            done(RequestOutcome(
                                ok,
                                ok && deployment.responseDegraded(
                                          payload)));
                        });
        });

    WindowReport report;
    report.load = std::move(load);
    report.syscalls =
        diffSyscalls(sys_before, snapshotSyscalls());
    report.contextSwitches =
        diffContextSwitches(cs_before, sampleContextSwitches());
    const auto &contention = contentionStats();
    report.hitmEvents =
        contention.lockContended.load(std::memory_order_relaxed);
    report.futexWaits =
        contention.futexWaits.load(std::memory_order_relaxed);
    report.futexWakes =
        contention.futexWakes.load(std::memory_order_relaxed);
    report.osBreakdown = osTrace().collect();
    return report;
}

double
measureSaturation(ServiceDeployment &deployment, int max_workers,
                  int64_t per_step_ns)
{
    rpc::ClientOptions client_options;
    client_options.connections = 4;
    client_options.completionThreads = 1;
    client_options.name = "satgen";
    rpc::RpcClient client(deployment.midTierPort(), client_options);

    const uint32_t method = deployment.frontEndMethod();
    Mutex rng_mutex{LockRank::harness, "harness.rng"};
    Rng rng(deployment.kind() == ServiceKind::Router ? 77 : 78);

    return findSaturationThroughput(
        [&](uint64_t) {
            std::string body;
            {
                MutexLock guard(rng_mutex);
                body = deployment.sampleRequestBody(rng);
            }
            auto result = client.callSync(method, std::move(body));
            return result.isOk();
        },
        max_workers, per_step_ns);
}

} // namespace musuite

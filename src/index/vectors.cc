/**
 * @file
 * Implementation of vector storage and distance kernels.
 */

#include "index/vectors.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "base/logging.h"

namespace musuite {

uint64_t
FeatureStore::add(std::span<const float> vector)
{
    MUSUITE_CHECK(vector.size() == dim)
        << "vector dimension " << vector.size() << " != store " << dim;
    data.insert(data.end(), vector.begin(), vector.end());
    return count++;
}

float
squaredL2(std::span<const float> a, std::span<const float> b)
{
    float sum = 0.0f;
    const size_t n = a.size();
    for (size_t i = 0; i < n; ++i) {
        const float d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

float
dotProduct(std::span<const float> a, std::span<const float> b)
{
    float sum = 0.0f;
    const size_t n = a.size();
    for (size_t i = 0; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

float
cosineSimilarity(std::span<const float> a, std::span<const float> b)
{
    const float dot = dotProduct(a, b);
    const float na = dotProduct(a, a);
    const float nb = dotProduct(b, b);
    if (na == 0.0f || nb == 0.0f)
        return 0.0f;
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<Neighbor>
mergeTopK(const std::vector<std::vector<Neighbor>> &sorted_lists, size_t k)
{
    // K-way merge over already-sorted leaf responses.
    struct Cursor
    {
        const std::vector<Neighbor> *list;
        size_t pos;
    };
    auto cmp = [](const Cursor &a, const Cursor &b) {
        return (*b.list)[b.pos] < (*a.list)[a.pos]; // Min-heap.
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)>
        heap(cmp);
    for (const auto &list : sorted_lists) {
        if (!list.empty())
            heap.push(Cursor{&list, 0});
    }

    std::vector<Neighbor> merged;
    merged.reserve(k);
    while (!heap.empty() && merged.size() < k) {
        Cursor cursor = heap.top();
        heap.pop();
        merged.push_back((*cursor.list)[cursor.pos]);
        if (++cursor.pos < cursor.list->size())
            heap.push(cursor);
    }
    return merged;
}

} // namespace musuite

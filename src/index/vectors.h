/**
 * @file
 * Dense feature-vector storage and distance kernels.
 *
 * HDSearch represents every image as an n-dimensional feature vector
 * (2048-d Inception embeddings in the paper). FeatureStore keeps
 * vectors contiguous for cache- and SIMD-friendly scans; the distance
 * kernels are written as straight reduction loops that GCC/Clang
 * auto-vectorize, which is the paper's "accelerated with SIMD" leaf
 * distance computation.
 */

#ifndef MUSUITE_INDEX_VECTORS_H
#define MUSUITE_INDEX_VECTORS_H

#include <cstdint>
#include <span>
#include <vector>

namespace musuite {

/** Contiguous row-major store of fixed-dimension float vectors. */
class FeatureStore
{
  public:
    explicit FeatureStore(size_t dimension) : dim(dimension) {}

    /** Append one vector; must match the store dimension. */
    uint64_t add(std::span<const float> vector);

    /** Borrow vector i. */
    std::span<const float>
    view(uint64_t index) const
    {
        return {data.data() + index * dim, dim};
    }

    size_t size() const { return count; }
    size_t dimension() const { return dim; }

    /** Raw contiguous storage (bulk loads). */
    const std::vector<float> &raw() const { return data; }
    void reserve(size_t vectors) { data.reserve(vectors * dim); }

  private:
    size_t dim;
    size_t count = 0;
    std::vector<float> data;
};

/** Squared Euclidean distance (monotone with L2; cheaper). */
float squaredL2(std::span<const float> a, std::span<const float> b);

/** Cosine similarity in [-1, 1]; 0 for zero vectors. */
float cosineSimilarity(std::span<const float> a, std::span<const float> b);

/** Dot product. */
float dotProduct(std::span<const float> a, std::span<const float> b);

/** One scored candidate in a nearest-neighbour result. */
struct Neighbor
{
    uint64_t id = 0;
    float distance = 0.0f; //!< Squared L2; smaller is nearer.

    bool
    operator<(const Neighbor &other) const
    {
        return distance < other.distance ||
               (distance == other.distance && id < other.id);
    }
};

/**
 * Merge several distance-sorted neighbour lists into the global top-k
 * (the HDSearch mid-tier response-path merge).
 */
std::vector<Neighbor> mergeTopK(
    const std::vector<std::vector<Neighbor>> &sorted_lists, size_t k);

} // namespace musuite

#endif // MUSUITE_INDEX_VECTORS_H

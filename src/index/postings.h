/**
 * @file
 * Posting lists with skips and the inverted index for Set Algebra.
 *
 * Per the paper (§III-C): the posting list of each term is a sorted
 * list of document identifiers stored with skip pointers i→j that
 * jump over skip-size documents; leaves intersect lists with a linear
 * merge (the "merge" step of merge sort) accelerated by skips, and
 * the mid-tier unions the per-shard results. The index builder also
 * derives a stop list from collection frequency and discards stop
 * words during indexing.
 */

#ifndef MUSUITE_INDEX_POSTINGS_H
#define MUSUITE_INDEX_POSTINGS_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace musuite {

/**
 * Sorted document-id list with evenly spaced skip pointers (the
 * array-backed equivalent of the paper's skip list: the skip sequence
 * S_t plus the dense ids C_t).
 */
class PostingList
{
  public:
    PostingList() = default;

    /** Build from sorted, unique doc ids. @param skip_size 0 = auto. */
    explicit PostingList(std::vector<uint32_t> sorted_docs,
                         uint32_t skip_size = 0);

    const std::vector<uint32_t> &docs() const { return ids; }
    size_t size() const { return ids.size(); }
    bool empty() const { return ids.empty(); }
    uint32_t skipSize() const { return skip; }

    /**
     * Index of the first element >= target, starting from `from`,
     * fast-forwarded through the skip sequence.
     */
    size_t seek(uint32_t target, size_t from) const;

    /** Membership test via skips + local scan. */
    bool contains(uint32_t doc) const;

  private:
    std::vector<uint32_t> ids;
    /** skips[k] = ids[(k+1) * skip], the skip targets. */
    std::vector<uint32_t> skipTargets;
    uint32_t skip = 0;
};

/** Intersection by plain linear merge: O(|a| + |b|). */
std::vector<uint32_t> intersectLinear(const PostingList &a,
                                      const PostingList &b);

/**
 * Intersection that drives the smaller list and seeks the larger via
 * skips; wins when sizes are lopsided.
 */
std::vector<uint32_t> intersectWithSkips(const PostingList &a,
                                         const PostingList &b);

/** Intersect many lists, smallest-first for early exit. */
std::vector<uint32_t> intersectAll(
    const std::vector<const PostingList *> &lists, bool use_skips = true);

/** Union of sorted id lists (the mid-tier merge). */
std::vector<uint32_t> unionAll(
    const std::vector<std::vector<uint32_t>> &lists);

/**
 * Inverted index over a document shard: term id -> posting list, with
 * collection-frequency-derived stop list.
 */
class InvertedIndex
{
  public:
    /**
     * Build from tokenized documents.
     * @param documents documents[d] = term ids appearing in doc d
     *        (duplicates fine).
     * @param doc_ids Global id of each document (shard mapping).
     * @param stop_terms Number of most-frequent terms to discard.
     */
    InvertedIndex(const std::vector<std::vector<uint32_t>> &documents,
                  const std::vector<uint32_t> &doc_ids,
                  size_t stop_terms = 0);

    /** Posting list for a term; null if absent or stopped. */
    const PostingList *postings(uint32_t term) const;

    /** Docs containing every query term (stop words ignored). */
    std::vector<uint32_t> intersectTerms(
        std::span<const uint32_t> terms) const;

    bool isStopWord(uint32_t term) const
    {
        return stopList.count(term) > 0;
    }

    size_t termCount() const { return lists.size(); }
    size_t stopListSize() const { return stopList.size(); }

  private:
    std::unordered_map<uint32_t, PostingList> lists;
    std::unordered_set<uint32_t> stopList;
};

} // namespace musuite

#endif // MUSUITE_INDEX_POSTINGS_H

/**
 * @file
 * Implementation of posting lists, intersections, and the inverted
 * index.
 */

#include "index/postings.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace musuite {

PostingList::PostingList(std::vector<uint32_t> sorted_docs,
                         uint32_t skip_size)
    : ids(std::move(sorted_docs))
{
    MUSUITE_CHECK(std::is_sorted(ids.begin(), ids.end()))
        << "posting list must be sorted";
    if (ids.empty())
        return;
    skip = skip_size ? skip_size
                     : std::max<uint32_t>(
                           2, uint32_t(std::sqrt(double(ids.size()))));
    for (size_t pos = skip; pos < ids.size(); pos += skip)
        skipTargets.push_back(ids[pos]);
}

size_t
PostingList::seek(uint32_t target, size_t from) const
{
    if (ids.empty())
        return 0;
    // Fast-forward over whole skip blocks whose end is still too
    // small, then finish with a local scan inside one block.
    size_t block = from / skip;
    while (block < skipTargets.size() && skipTargets[block] < target)
        ++block;
    size_t pos = std::max(from, block * skip);
    const size_t block_end =
        std::min(ids.size(), (block + 1) * size_t(skip));
    while (pos < block_end && ids[pos] < target)
        ++pos;
    return pos;
}

bool
PostingList::contains(uint32_t doc) const
{
    if (ids.empty())
        return false;
    const size_t pos = seek(doc, 0);
    return pos < ids.size() && ids[pos] == doc;
}

std::vector<uint32_t>
intersectLinear(const PostingList &a, const PostingList &b)
{
    const auto &x = a.docs();
    const auto &y = b.docs();
    std::vector<uint32_t> out;
    out.reserve(std::min(x.size(), y.size()));
    size_t i = 0, j = 0;
    while (i < x.size() && j < y.size()) {
        if (x[i] < y[j]) {
            ++i;
        } else if (y[j] < x[i]) {
            ++j;
        } else {
            out.push_back(x[i]);
            ++i;
            ++j;
        }
    }
    return out;
}

std::vector<uint32_t>
intersectWithSkips(const PostingList &a, const PostingList &b)
{
    // Drive from the smaller list, seeking in the larger via skips.
    const PostingList &small = a.size() <= b.size() ? a : b;
    const PostingList &large = a.size() <= b.size() ? b : a;
    std::vector<uint32_t> out;
    out.reserve(small.size());
    size_t cursor = 0;
    for (uint32_t doc : small.docs()) {
        cursor = large.seek(doc, cursor);
        if (cursor >= large.size())
            break;
        if (large.docs()[cursor] == doc)
            out.push_back(doc);
    }
    return out;
}

std::vector<uint32_t>
intersectAll(const std::vector<const PostingList *> &lists, bool use_skips)
{
    if (lists.empty())
        return {};
    for (const PostingList *list : lists) {
        if (!list || list->empty())
            return {};
    }
    std::vector<const PostingList *> order(lists);
    std::sort(order.begin(), order.end(),
              [](const PostingList *a, const PostingList *b) {
                  return a->size() < b->size();
              });

    PostingList accumulated(
        std::vector<uint32_t>(order[0]->docs()));
    for (size_t i = 1; i < order.size() && !accumulated.empty(); ++i) {
        std::vector<uint32_t> next =
            use_skips ? intersectWithSkips(accumulated, *order[i])
                      : intersectLinear(accumulated, *order[i]);
        accumulated = PostingList(std::move(next));
    }
    return accumulated.docs();
}

std::vector<uint32_t>
unionAll(const std::vector<std::vector<uint32_t>> &lists)
{
    // Iterative pairwise merge; shard counts are small (4-16).
    std::vector<uint32_t> out;
    for (const auto &list : lists) {
        MUSUITE_CHECK(std::is_sorted(list.begin(), list.end()))
            << "union input must be sorted";
        std::vector<uint32_t> merged;
        merged.reserve(out.size() + list.size());
        std::set_union(out.begin(), out.end(), list.begin(), list.end(),
                       std::back_inserter(merged));
        out = std::move(merged);
    }
    return out;
}

InvertedIndex::InvertedIndex(
    const std::vector<std::vector<uint32_t>> &documents,
    const std::vector<uint32_t> &doc_ids, size_t stop_terms)
{
    MUSUITE_CHECK(documents.size() == doc_ids.size())
        << "documents/doc_ids size mismatch";

    // Collection frequency: total occurrences of each term.
    std::unordered_map<uint32_t, uint64_t> frequency;
    for (const auto &terms : documents) {
        for (uint32_t term : terms)
            frequency[term]++;
    }

    // The stop list is the stop_terms most frequent terms.
    if (stop_terms > 0 && !frequency.empty()) {
        std::vector<std::pair<uint64_t, uint32_t>> ranked;
        ranked.reserve(frequency.size());
        for (const auto &[term, count] : frequency)
            ranked.push_back({count, term});
        const size_t keep = std::min(stop_terms, ranked.size());
        std::partial_sort(ranked.begin(), ranked.begin() + keep,
                          ranked.end(), std::greater<>());
        for (size_t i = 0; i < keep; ++i)
            stopList.insert(ranked[i].second);
    }

    // Gather per-term doc sets, skipping stop words during indexing.
    std::unordered_map<uint32_t, std::vector<uint32_t>> gathered;
    for (size_t d = 0; d < documents.size(); ++d) {
        for (uint32_t term : documents[d]) {
            if (stopList.count(term))
                continue;
            auto &docs = gathered[term];
            if (docs.empty() || docs.back() != doc_ids[d])
                docs.push_back(doc_ids[d]);
        }
    }
    for (auto &[term, docs] : gathered) {
        std::sort(docs.begin(), docs.end());
        docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
        lists.emplace(term, PostingList(std::move(docs)));
    }
}

const PostingList *
InvertedIndex::postings(uint32_t term) const
{
    auto it = lists.find(term);
    return it == lists.end() ? nullptr : &it->second;
}

std::vector<uint32_t>
InvertedIndex::intersectTerms(std::span<const uint32_t> terms) const
{
    std::vector<const PostingList *> gathered;
    gathered.reserve(terms.size());
    for (uint32_t term : terms) {
        if (stopList.count(term))
            continue; // Stop words carry no selectivity.
        const PostingList *list = postings(term);
        if (!list)
            return {}; // Term absent from shard: empty intersection.
        gathered.push_back(list);
    }
    if (gathered.empty())
        return {}; // All terms were stop words.
    return intersectAll(gathered);
}

} // namespace musuite

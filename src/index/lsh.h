/**
 * @file
 * p-stable (E2) locality-sensitive hashing for approximate k-NN.
 *
 * The HDSearch mid-tier's index (paper §III-A): L hash tables, each
 * keyed by the concatenation of k quantized random projections
 * h(v) = floor((a·v + b) / w) with Gaussian a — the classic E2LSH
 * scheme (Datar et al.), the same family FLANN implements. Following
 * the paper, the tables do not store feature vectors: buckets hold
 * {leaf, point-id} tuples that indirectly reference vectors sharded
 * across leaf microservers. Optional multi-probe lookup visits
 * neighbouring buckets to trade latency for recall without more
 * tables.
 */

#ifndef MUSUITE_INDEX_LSH_H
#define MUSUITE_INDEX_LSH_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/rng.h"
#include "index/vectors.h"

namespace musuite {

/** A bucket entry: which leaf shard holds the point and its local id. */
struct LshEntry
{
    uint32_t leaf = 0;
    uint32_t pointId = 0;

    bool
    operator==(const LshEntry &other) const
    {
        return leaf == other.leaf && pointId == other.pointId;
    }
};

struct LshParams
{
    int numTables = 8;      //!< L: independent hash tables.
    int hashesPerTable = 12;//!< k: projections concatenated per key.
    float bucketWidth = 4.0f; //!< w: quantization width.
    int multiProbes = 0;    //!< Extra neighbouring buckets per table.
    uint64_t seed = 42;
};

class LshIndex
{
  public:
    LshIndex(size_t dimension, LshParams params);

    /** Insert one point's hash entry (vectors stay on the leaves). */
    void insert(std::span<const float> vector, LshEntry entry);

    /**
     * Gather candidate entries whose buckets the query falls in
     * (union over tables, deduplicated), grouped by leaf.
     *
     * @return candidates[leaf] = point ids for that leaf shard.
     */
    std::unordered_map<uint32_t, std::vector<uint32_t>>
    query(std::span<const float> vector) const;

    /** Total entries inserted. */
    size_t size() const { return entries; }

    /** Mean bucket occupancy of non-empty buckets (diagnostics). */
    double meanBucketSize() const;

  private:
    /** Raw (unquantized) projections of a vector for one table. */
    void projectRaw(size_t table, std::span<const float> vector,
                    std::vector<float> &raw) const;
    /** Bucket key from quantized projections. */
    static uint64_t combine(const std::vector<int32_t> &quantized);

    size_t dim;
    LshParams params;
    /** Projection vectors: [table][hash] rows of dim floats. */
    std::vector<float> projections;
    /** Offsets b in [0, w). */
    std::vector<float> offsets;
    /** One hash table per L: bucket key -> entries. */
    std::vector<std::unordered_map<uint64_t, std::vector<LshEntry>>>
        tables;
    size_t entries = 0;
};

/**
 * Exact k-NN by linear scan, used by leaves for candidate refinement
 * and by tests as LSH ground truth.
 */
class BruteForceScanner
{
  public:
    explicit BruteForceScanner(const FeatureStore &store)
        : store(store)
    {}

    /** Exact top-k over the whole store. */
    std::vector<Neighbor> topK(std::span<const float> query,
                               size_t k) const;

    /** Exact top-k over a candidate subset (HDSearch leaf path). */
    std::vector<Neighbor> topKOf(std::span<const float> query,
                                 std::span<const uint32_t> candidates,
                                 size_t k) const;

  private:
    const FeatureStore &store;
};

} // namespace musuite

#endif // MUSUITE_INDEX_LSH_H

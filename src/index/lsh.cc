/**
 * @file
 * Implementation of the E2LSH index.
 */

#include "index/lsh.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "base/logging.h"

namespace musuite {

namespace {

/** Mix one 64-bit word into a running bucket key. */
inline uint64_t
mixKey(uint64_t key, uint64_t word)
{
    key ^= word + 0x9E3779B97F4A7C15ull + (key << 6) + (key >> 2);
    key *= 0xBF58476D1CE4E5B9ull;
    return key ^ (key >> 29);
}

} // namespace

LshIndex::LshIndex(size_t dimension, LshParams params_in)
    : dim(dimension), params(params_in)
{
    MUSUITE_CHECK(params.numTables >= 1) << "need >= 1 table";
    MUSUITE_CHECK(params.hashesPerTable >= 1) << "need >= 1 hash";
    MUSUITE_CHECK(params.bucketWidth > 0) << "bucket width must be > 0";

    Rng rng(params.seed);
    const size_t total_hashes =
        size_t(params.numTables) * size_t(params.hashesPerTable);
    projections.resize(total_hashes * dim);
    for (float &coefficient : projections)
        coefficient = float(rng.nextGaussian());
    offsets.resize(total_hashes);
    for (float &offset : offsets)
        offset = float(rng.nextDouble()) * params.bucketWidth;
    tables.resize(size_t(params.numTables));
}

void
LshIndex::projectRaw(size_t table, std::span<const float> vector,
                     std::vector<float> &raw) const
{
    const size_t k = size_t(params.hashesPerTable);
    raw.resize(k);
    for (size_t j = 0; j < k; ++j) {
        const size_t hash_index = table * k + j;
        const float *row = projections.data() + hash_index * dim;
        raw[j] = dotProduct({row, dim}, vector) + offsets[hash_index];
    }
}

uint64_t
LshIndex::combine(const std::vector<int32_t> &quantized)
{
    uint64_t key = 0x243F6A8885A308D3ull;
    for (int32_t q : quantized)
        key = mixKey(key, uint64_t(uint32_t(q)));
    return key;
}

void
LshIndex::insert(std::span<const float> vector, LshEntry entry)
{
    MUSUITE_CHECK(vector.size() == dim) << "dimension mismatch";
    std::vector<float> raw;
    std::vector<int32_t> quantized(size_t(params.hashesPerTable));
    for (size_t t = 0; t < tables.size(); ++t) {
        projectRaw(t, vector, raw);
        for (size_t j = 0; j < raw.size(); ++j)
            quantized[j] =
                int32_t(std::floor(raw[j] / params.bucketWidth));
        tables[t][combine(quantized)].push_back(entry);
    }
    ++entries;
}

std::unordered_map<uint32_t, std::vector<uint32_t>>
LshIndex::query(std::span<const float> vector) const
{
    MUSUITE_CHECK(vector.size() == dim) << "dimension mismatch";

    std::unordered_set<uint64_t> seen;
    std::unordered_map<uint32_t, std::vector<uint32_t>> by_leaf;
    auto admit = [&](const std::vector<LshEntry> &bucket) {
        for (const LshEntry &entry : bucket) {
            const uint64_t token =
                (uint64_t(entry.leaf) << 32) | entry.pointId;
            if (seen.insert(token).second)
                by_leaf[entry.leaf].push_back(entry.pointId);
        }
    };

    std::vector<float> raw;
    std::vector<int32_t> quantized(size_t(params.hashesPerTable));
    for (size_t t = 0; t < tables.size(); ++t) {
        projectRaw(t, vector, raw);
        for (size_t j = 0; j < raw.size(); ++j)
            quantized[j] =
                int32_t(std::floor(raw[j] / params.bucketWidth));

        auto it = tables[t].find(combine(quantized));
        if (it != tables[t].end())
            admit(it->second);

        if (params.multiProbes > 0) {
            // Probe the buckets adjacent along the coordinates whose
            // projection landed closest to a quantization boundary
            // (the core multi-probe LSH heuristic).
            struct Probe
            {
                size_t coordinate;
                int32_t delta;
                float boundaryGap;
            };
            std::vector<Probe> probes;
            probes.reserve(raw.size() * 2);
            for (size_t j = 0; j < raw.size(); ++j) {
                const float cell =
                    raw[j] / params.bucketWidth - float(quantized[j]);
                probes.push_back({j, -1, cell});
                probes.push_back({j, +1, 1.0f - cell});
            }
            std::sort(probes.begin(), probes.end(),
                      [](const Probe &a, const Probe &b) {
                          return a.boundaryGap < b.boundaryGap;
                      });
            const size_t limit =
                std::min(probes.size(), size_t(params.multiProbes));
            for (size_t p = 0; p < limit; ++p) {
                quantized[probes[p].coordinate] += probes[p].delta;
                auto probe_it = tables[t].find(combine(quantized));
                quantized[probes[p].coordinate] -= probes[p].delta;
                if (probe_it != tables[t].end())
                    admit(probe_it->second);
            }
        }
    }
    return by_leaf;
}

double
LshIndex::meanBucketSize() const
{
    size_t buckets = 0;
    size_t total = 0;
    for (const auto &table : tables) {
        for (const auto &[key, bucket] : table) {
            ++buckets;
            total += bucket.size();
        }
    }
    return buckets ? double(total) / double(buckets) : 0.0;
}

std::vector<Neighbor>
BruteForceScanner::topK(std::span<const float> query, size_t k) const
{
    std::vector<Neighbor> all;
    all.reserve(store.size());
    for (size_t i = 0; i < store.size(); ++i)
        all.push_back({i, squaredL2(query, store.view(i))});
    const size_t keep = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + keep, all.end());
    all.resize(keep);
    return all;
}

std::vector<Neighbor>
BruteForceScanner::topKOf(std::span<const float> query,
                          std::span<const uint32_t> candidates,
                          size_t k) const
{
    std::vector<Neighbor> scored;
    scored.reserve(candidates.size());
    for (uint32_t id : candidates) {
        if (id < store.size())
            scored.push_back({id, squaredL2(query, store.view(id))});
    }
    const size_t keep = std::min(k, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + keep, scored.end());
    scored.resize(keep);
    return scored;
}

} // namespace musuite

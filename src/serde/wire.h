/**
 * @file
 * Compact binary wire format for RPC payloads.
 *
 * A protobuf-style encoding — LEB128 varints, zigzag signed integers,
 * little-endian fixed words, and length-delimited byte strings — but
 * with positional rather than tagged fields: every µSuite message type
 * encodes and decodes its fields in a fixed order, which is smaller and
 * faster than tagged encoding and adequate because both ends of every
 * RPC are built from this tree. Messages implement
 *
 *     void encode(WireWriter &out) const;
 *     bool decode(WireReader &in);
 *
 * Decoding never throws: readers carry a sticky failure flag that
 * callers check once at the end.
 */

#ifndef MUSUITE_SERDE_WIRE_H
#define MUSUITE_SERDE_WIRE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace musuite {

// --------------------------------------------------------------------
// Wire-buffer recycling pool.
//
// Every murpc frame is built in a std::string that travels encode →
// send queue → kernel and then dies; at steady state that is one
// malloc/free pair per message on the hot path. The pool recycles
// those buffers process-wide: acquire hands out an empty string that
// keeps a previously released buffer's capacity, release returns one
// after use. Oversized buffers (> ~1 MiB) and overflow beyond the pool
// cap are simply freed, so a burst of jumbo frames cannot pin memory.
// --------------------------------------------------------------------

/** Empty buffer, reusing pooled capacity when available. */
std::string acquireWireBuffer(size_t reserve = 0);

/** Recycle a spent buffer (contents discarded). */
void releaseWireBuffer(std::string &&buffer);

/** Buffers currently sitting in the pool (tests/metrics). */
size_t wireBufferPoolSize();

/** Serializer appending to an internal byte buffer. */
class WireWriter
{
  public:
    WireWriter() = default;

    /** Reuse `storage` (cleared) as the output buffer — pairs with
     *  acquireWireBuffer() for allocation-free steady-state encoding. */
    explicit WireWriter(std::string storage) : buffer(std::move(storage))
    {
        buffer.clear();
    }

    void putVarint(uint64_t value);
    void putZigzag(int64_t value);
    void putFixed32(uint32_t value);
    void putFixed64(uint64_t value);
    void putDouble(double value);
    void putFloat(float value);
    void putBool(bool value) { putVarint(value ? 1 : 0); }

    /** Length-delimited byte string. */
    void putBytes(std::string_view bytes);

    /** Length-delimited vector of varints. */
    void putVarintVector(const std::vector<uint64_t> &values);
    void putU32Vector(const std::vector<uint32_t> &values);

    /** Length-delimited packed floats (feature vectors). */
    void putFloatVector(const std::vector<float> &values);

    /** Length-delimited packed doubles. */
    void putDoubleVector(const std::vector<double> &values);

    /** Encode a nested message (length-delimited). */
    template <typename Message>
    void
    putMessage(const Message &msg)
    {
        WireWriter nested(acquireWireBuffer());
        msg.encode(nested);
        putBytes(nested.view());
        releaseWireBuffer(nested.take());
    }

    /** Encode a repeated nested message field. */
    template <typename Message>
    void
    putMessageVector(const std::vector<Message> &msgs)
    {
        putVarint(msgs.size());
        for (const auto &msg : msgs)
            putMessage(msg);
    }

    const std::string &str() const { return buffer; }
    std::string_view view() const { return buffer; }
    std::string take() { return std::move(buffer); }
    size_t size() const { return buffer.size(); }
    void clear() { buffer.clear(); }

  private:
    std::string buffer;
};

/** Deserializer over a borrowed byte view with a sticky error flag. */
class WireReader
{
  public:
    explicit WireReader(std::string_view data) : data(data) {}

    uint64_t getVarint();
    int64_t getZigzag();
    uint32_t getFixed32();
    uint64_t getFixed64();
    double getDouble();
    float getFloat();
    bool getBool() { return getVarint() != 0; }

    /** Borrowed view of a length-delimited byte string. */
    std::string_view getBytes();

    std::vector<uint64_t> getVarintVector();
    std::vector<uint32_t> getU32Vector();
    std::vector<float> getFloatVector();
    std::vector<double> getDoubleVector();

    template <typename Message>
    bool
    getMessage(Message &msg)
    {
        std::string_view bytes = getBytes();
        if (failed)
            return false;
        WireReader nested(bytes);
        if (!msg.decode(nested))
            failed = true;
        return !failed;
    }

    template <typename Message>
    std::vector<Message>
    getMessageVector()
    {
        const uint64_t count = getVarint();
        std::vector<Message> msgs;
        if (failed || count > remaining())
            return fail<std::vector<Message>>();
        msgs.resize(count);
        for (auto &msg : msgs) {
            if (!getMessage(msg))
                return {};
        }
        return msgs;
    }

    /** True iff no decode error has occurred so far. */
    bool ok() const { return !failed; }

    /** True iff ok and the whole input was consumed. */
    bool atEnd() const { return ok() && cursor == data.size(); }

    size_t remaining() const { return data.size() - cursor; }

  private:
    template <typename T>
    T
    fail()
    {
        failed = true;
        return T{};
    }

    std::string_view data;
    size_t cursor = 0;
    bool failed = false;
};

/** Serialize a message to a standalone string. The buffer comes from
 *  the wire pool; release it back after use to close the reuse loop. */
template <typename Message>
std::string
encodeMessage(const Message &msg)
{
    WireWriter out(acquireWireBuffer());
    msg.encode(out);
    return out.take();
}

/** Deserialize a message from a byte view; false on malformed input. */
template <typename Message>
bool
decodeMessage(std::string_view bytes, Message &msg)
{
    WireReader in(bytes);
    return msg.decode(in) && in.ok();
}

} // namespace musuite

#endif // MUSUITE_SERDE_WIRE_H

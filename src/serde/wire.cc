/**
 * @file
 * Implementation of the wire writer/reader.
 */

#include "serde/wire.h"

#include "base/threading.h"

namespace musuite {

namespace {

// Pool sizing: enough entries for every thread of a busy mid-tier to
// have a few buffers in flight, small enough that the pool itself is
// noise (128 × ≤1 MiB worst case, in practice a few KiB each).
constexpr size_t maxPooledBuffers = 128;
constexpr size_t maxPooledCapacity = 1u << 20;

Mutex poolMutex{LockRank::wirePool, "serde.wirepool"};
std::vector<std::string> pool GUARDED_BY(poolMutex);

} // namespace

std::string
acquireWireBuffer(size_t reserve)
{
    std::string out;
    {
        MutexLock lock(poolMutex);
        if (!pool.empty()) {
            out = std::move(pool.back());
            pool.pop_back();
        }
    }
    out.clear();
    if (reserve != 0)
        out.reserve(reserve);
    return out;
}

void
releaseWireBuffer(std::string &&buffer)
{
    // Small-string-optimized buffers carry no heap allocation worth
    // keeping; jumbo ones would pin memory. Pool only the middle.
    if (buffer.capacity() <= sizeof(std::string) ||
        buffer.capacity() > maxPooledCapacity)
        return;
    buffer.clear();
    MutexLock lock(poolMutex);
    if (pool.size() >= maxPooledBuffers)
        return;
    pool.push_back(std::move(buffer));
}

size_t
wireBufferPoolSize()
{
    MutexLock lock(poolMutex);
    return pool.size();
}

void
WireWriter::putVarint(uint64_t value)
{
    while (value >= 0x80) {
        buffer.push_back(char(uint8_t(value) | 0x80));
        value >>= 7;
    }
    buffer.push_back(char(uint8_t(value)));
}

void
WireWriter::putZigzag(int64_t value)
{
    putVarint((uint64_t(value) << 1) ^ uint64_t(value >> 63));
}

void
WireWriter::putFixed32(uint32_t value)
{
    char bytes[4];
    std::memcpy(bytes, &value, 4);
    buffer.append(bytes, 4);
}

void
WireWriter::putFixed64(uint64_t value)
{
    char bytes[8];
    std::memcpy(bytes, &value, 8);
    buffer.append(bytes, 8);
}

void
WireWriter::putDouble(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, 8);
    putFixed64(bits);
}

void
WireWriter::putFloat(float value)
{
    uint32_t bits;
    std::memcpy(&bits, &value, 4);
    putFixed32(bits);
}

void
WireWriter::putBytes(std::string_view bytes)
{
    putVarint(bytes.size());
    // Empty views may carry a null data(), which append() forbids.
    if (!bytes.empty())
        buffer.append(bytes.data(), bytes.size());
}

void
WireWriter::putVarintVector(const std::vector<uint64_t> &values)
{
    putVarint(values.size());
    for (uint64_t v : values)
        putVarint(v);
}

void
WireWriter::putU32Vector(const std::vector<uint32_t> &values)
{
    putVarint(values.size());
    for (uint32_t v : values)
        putVarint(v);
}

void
WireWriter::putFloatVector(const std::vector<float> &values)
{
    putVarint(values.size());
    const size_t bytes = values.size() * sizeof(float);
    if (bytes != 0)
        buffer.append(reinterpret_cast<const char *>(values.data()),
                      bytes);
}

void
WireWriter::putDoubleVector(const std::vector<double> &values)
{
    putVarint(values.size());
    const size_t bytes = values.size() * sizeof(double);
    if (bytes != 0)
        buffer.append(reinterpret_cast<const char *>(values.data()),
                      bytes);
}

uint64_t
WireReader::getVarint()
{
    uint64_t value = 0;
    int shift = 0;
    while (cursor < data.size() && shift < 64) {
        const uint8_t byte = uint8_t(data[cursor++]);
        value |= uint64_t(byte & 0x7F) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
    }
    return fail<uint64_t>();
}

int64_t
WireReader::getZigzag()
{
    const uint64_t encoded = getVarint();
    return int64_t(encoded >> 1) ^ -int64_t(encoded & 1);
}

uint32_t
WireReader::getFixed32()
{
    if (remaining() < 4)
        return fail<uint32_t>();
    uint32_t value;
    std::memcpy(&value, data.data() + cursor, 4);
    cursor += 4;
    return value;
}

uint64_t
WireReader::getFixed64()
{
    if (remaining() < 8)
        return fail<uint64_t>();
    uint64_t value;
    std::memcpy(&value, data.data() + cursor, 8);
    cursor += 8;
    return value;
}

double
WireReader::getDouble()
{
    const uint64_t bits = getFixed64();
    double value;
    std::memcpy(&value, &bits, 8);
    return value;
}

float
WireReader::getFloat()
{
    const uint32_t bits = getFixed32();
    float value;
    std::memcpy(&value, &bits, 4);
    return value;
}

std::string_view
WireReader::getBytes()
{
    const uint64_t length = getVarint();
    if (failed || length > remaining())
        return fail<std::string_view>();
    std::string_view bytes = data.substr(cursor, length);
    cursor += length;
    return bytes;
}

std::vector<uint64_t>
WireReader::getVarintVector()
{
    const uint64_t count = getVarint();
    if (failed || count > remaining())
        return fail<std::vector<uint64_t>>();
    std::vector<uint64_t> values(count);
    for (auto &v : values)
        v = getVarint();
    if (failed)
        return {};
    return values;
}

std::vector<uint32_t>
WireReader::getU32Vector()
{
    const uint64_t count = getVarint();
    if (failed || count > remaining())
        return fail<std::vector<uint32_t>>();
    std::vector<uint32_t> values(count);
    for (auto &v : values) {
        const uint64_t wide = getVarint();
        if (wide > UINT32_MAX)
            return fail<std::vector<uint32_t>>();
        v = uint32_t(wide);
    }
    if (failed)
        return {};
    return values;
}

std::vector<float>
WireReader::getFloatVector()
{
    const uint64_t count = getVarint();
    if (failed || count * sizeof(float) > remaining())
        return fail<std::vector<float>>();
    std::vector<float> values(count);
    // count == 0 gives null data() pointers, which memcpy forbids
    // even for zero-length copies.
    if (count != 0) {
        std::memcpy(values.data(), data.data() + cursor,
                    count * sizeof(float));
        cursor += count * sizeof(float);
    }
    return values;
}

std::vector<double>
WireReader::getDoubleVector()
{
    const uint64_t count = getVarint();
    if (failed || count * sizeof(double) > remaining())
        return fail<std::vector<double>>();
    std::vector<double> values(count);
    if (count != 0) {
        std::memcpy(values.data(), data.data() + cursor,
                    count * sizeof(double));
        cursor += count * sizeof(double);
    }
    return values;
}

} // namespace musuite
